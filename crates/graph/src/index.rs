//! The GRainDB-style graph index (paper §3.2.1, Fig. 5).
//!
//! * **EV-index**: for every edge tuple, the pre-resolved row ids of its
//!   source and target vertex tuples — GRainDB's extra `*_rowid` columns.
//!   It routes an edge to its joinable vertex tuples without hashing.
//! * **VE-index**: for every vertex tuple, the adjacent edge tuples and the
//!   corresponding neighbor vertex tuples, stored per edge label and
//!   direction in CSR form. Neighbor lists are sorted by neighbor row id so
//!   `EXPAND_INTERSECT` can intersect them with linear merges.

use crate::view::GraphView;
use relgo_common::{FxHashMap, LabelId, RelGoError, Result, RowId};
use relgo_storage::TableChange;
use std::sync::Arc;

/// Traversal direction through an edge label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Follow edges from source to target (λˢ side to λᵗ side).
    Out,
    /// Follow edges from target to source.
    In,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

/// EV-index of one edge label: `src_rid[e]` / `dst_rid[e]` are the row ids of
/// the source / target vertex tuples of edge row `e`.
#[derive(Debug, Clone, Default)]
pub struct EvIndex {
    /// Source vertex row per edge row.
    pub src_rid: Vec<RowId>,
    /// Target vertex row per edge row.
    pub dst_rid: Vec<RowId>,
}

/// CSR adjacency of one (edge label, direction): for vertex row `v`, the
/// adjacent `(edge row, neighbor row)` pairs are
/// `entries[offsets[v]..offsets[v+1]]`, sorted by neighbor row id.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    edge_rid: Vec<RowId>,
    nbr_rid: Vec<RowId>,
}

impl Csr {
    fn build(num_vertices: usize, mut triples: Vec<(RowId, RowId, RowId)>) -> Csr {
        // triples = (vertex, edge, neighbor); sort by vertex then neighbor
        // for intersection-friendly lists, with the edge row as the final
        // tie-breaker so the entry order is a *total* order — parallel data
        // edges land in edge-row order, and the delta merge path
        // (`Csr::merged_with_delta`) reproduces it exactly.
        triples.sort_unstable_by_key(|&(v, e, n)| (v, n, e));
        Csr::from_sorted(num_vertices, &triples)
    }

    /// Assemble a CSR from triples already sorted by `(vertex, neighbor,
    /// edge)` — the merge path's constructor (no re-sort).
    fn from_sorted(num_vertices: usize, triples: &[(RowId, RowId, RowId)]) -> Csr {
        let mut offsets = vec![0u32; num_vertices + 1];
        for &(v, _, _) in triples {
            offsets[v as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let edge_rid = triples.iter().map(|&(_, e, _)| e).collect();
        let nbr_rid = triples.iter().map(|&(_, _, n)| n).collect();
        Csr {
            offsets,
            edge_rid,
            nbr_rid,
        }
    }

    /// Clone with the offsets array extended to `num_vertices` (the
    /// append-only fast path: new vertex rows exist but no adjacency entry
    /// moved, so only the offset table must cover the new row range).
    fn extended(&self, num_vertices: usize) -> Csr {
        let mut offsets = self.offsets.clone();
        let last = *offsets.last().unwrap_or(&0);
        offsets.resize(num_vertices + 1, last);
        Csr {
            offsets,
            edge_rid: self.edge_rid.clone(),
            nbr_rid: self.nbr_rid.clone(),
        }
    }

    /// Iterate the entries as `(vertex, edge, neighbor)` triples in entry
    /// order (sorted by `(vertex, neighbor, edge)`).
    fn triples(&self) -> impl Iterator<Item = (RowId, RowId, RowId)> + '_ {
        (0..self.offsets.len().saturating_sub(1)).flat_map(move |v| {
            let lo = self.offsets[v] as usize;
            let hi = self.offsets[v + 1] as usize;
            (lo..hi).map(move |i| (v as RowId, self.edge_rid[i], self.nbr_rid[i]))
        })
    }

    /// The merged base+delta iteration path: stream the surviving base
    /// entries (tombstoned edges dropped, row ids remapped through the
    /// monotonic [`TableChange`] maps — which preserves the `(v, n, e)`
    /// sort order) merged with the already-sorted `delta` entries of newly
    /// ingested edges. Both inputs are consumed as sorted runs, so the
    /// merge is a single linear pass with no per-entry allocation, and the
    /// result is bit-identical to a from-scratch [`Csr`] build over the
    /// merged edge table.
    fn merged_with_delta(
        &self,
        num_vertices: usize,
        echange: &TableChange,
        vmap: &dyn Fn(RowId) -> Option<RowId>,
        nmap: &dyn Fn(RowId) -> Option<RowId>,
        delta: &[(RowId, RowId, RowId)],
    ) -> Result<Csr> {
        // Every base edge row has exactly one entry per direction CSR, so
        // the survivor count needs no pass over the entries.
        let survivors = self.len() - echange.deleted().len();
        let mut merged: Vec<(RowId, RowId, RowId)> = Vec::with_capacity(survivors + delta.len());
        let mut delta_it = delta.iter().copied().peekable();
        for (v, e, n) in self.triples() {
            let Some(e_new) = echange.new_id(e) else {
                continue;
            };
            let (v_new, n_new) = match (vmap(v), nmap(n)) {
                (Some(v_new), Some(n_new)) => (v_new, n_new),
                _ => {
                    return Err(RelGoError::schema(format!(
                        "surviving edge row {e} still references a deleted vertex row"
                    )))
                }
            };
            while let Some(&(dv, de, dn)) = delta_it.peek() {
                if (dv, dn, de) < (v_new, n_new, e_new) {
                    merged.push((dv, de, dn));
                    delta_it.next();
                } else {
                    break;
                }
            }
            merged.push((v_new, e_new, n_new));
        }
        merged.extend(delta_it);
        Ok(Csr::from_sorted(num_vertices, &merged))
    }

    /// Adjacent `(edges, neighbors)` slices of vertex row `v`.
    #[inline]
    pub fn neighbors(&self, v: RowId) -> (&[RowId], &[RowId]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.edge_rid[lo..hi], &self.nbr_rid[lo..hi])
    }

    /// Degree of vertex row `v`.
    #[inline]
    pub fn degree(&self, v: RowId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Total number of adjacency entries.
    pub fn len(&self) -> usize {
        self.edge_rid.len()
    }

    /// Whether the CSR holds no entries.
    pub fn is_empty(&self) -> bool {
        self.edge_rid.is_empty()
    }
}

/// The complete graph index: EV per edge label, VE (CSR) per edge label and
/// direction. Per-label components sit behind `Arc`s so an incremental
/// rebuild ([`GraphIndex::rebuild_delta`]) shares the untouched labels'
/// memory with the previous epoch's index.
#[derive(Debug, Clone, Default)]
pub struct GraphIndex {
    ev: Vec<Arc<EvIndex>>,
    ve_out: Vec<Arc<Csr>>,
    ve_in: Vec<Arc<Csr>>,
}

impl GraphIndex {
    /// Build both index families for every edge label of the view. Fails if
    /// any λ function is partial (dangling foreign key).
    pub fn build(view: &GraphView) -> Result<GraphIndex> {
        let n_edges = view.schema().edge_label_count();
        let mut ev = Vec::with_capacity(n_edges);
        let mut ve_out = Vec::with_capacity(n_edges);
        let mut ve_in = Vec::with_capacity(n_edges);
        for li in 0..n_edges as u16 {
            let el = LabelId(li);
            let (src_label, dst_label) = view.schema().edge_endpoints(el);
            let m = view.edge_count(el);
            let mut idx = EvIndex {
                src_rid: Vec::with_capacity(m),
                dst_rid: Vec::with_capacity(m),
            };
            let mut out_triples = Vec::with_capacity(m);
            let mut in_triples = Vec::with_capacity(m);
            for e in 0..m as RowId {
                let s = view.resolve_src(el, e)?;
                let t = view.resolve_dst(el, e)?;
                idx.src_rid.push(s);
                idx.dst_rid.push(t);
                out_triples.push((s, e, t));
                in_triples.push((t, e, s));
            }
            ve_out.push(Arc::new(Csr::build(
                view.vertex_count(src_label),
                out_triples,
            )));
            ve_in.push(Arc::new(Csr::build(
                view.vertex_count(dst_label),
                in_triples,
            )));
            ev.push(Arc::new(idx));
        }
        Ok(GraphIndex { ev, ve_out, ve_in })
    }

    /// Incrementally rebuild after a committed delta: `view` is the *new*
    /// (merged) view, `changes` maps changed table names to the
    /// [`TableChange`] that produced them.
    ///
    /// Per edge label:
    ///
    /// * **untouched** (edge table and both endpoint tables unchanged) —
    ///   all three per-label structures are shared (`Arc` clone, O(1));
    /// * **endpoints grew append-only, edge table unchanged** — every
    ///   existing entry is still valid; only the CSR offset tables are
    ///   extended over the new vertex rows;
    /// * **anything else** — the label is re-derived from the old index by
    ///   the merged base+delta path: surviving entries are remapped through
    ///   the monotonic old→new row maps (which keeps them sorted), newly
    ///   ingested edges are λ-resolved against the merged view, and the two
    ///   sorted runs merge linearly (`Csr::merged_with_delta`). Deleting
    ///   a vertex row still referenced by a surviving edge is an error (λ
    ///   must stay total), as is an inserted edge with a dangling key.
    ///
    /// The result is bit-identical to [`GraphIndex::build`] over the merged
    /// view, at the cost of the touched labels only.
    pub fn rebuild_delta(
        prev: &GraphIndex,
        view: &GraphView,
        changes: &FxHashMap<String, TableChange>,
    ) -> Result<GraphIndex> {
        let n_edges = view.schema().edge_label_count();
        let mut ev = Vec::with_capacity(n_edges);
        let mut ve_out = Vec::with_capacity(n_edges);
        let mut ve_in = Vec::with_capacity(n_edges);
        for li in 0..n_edges as u16 {
            let el = LabelId(li);
            let (src_label, dst_label) = view.schema().edge_endpoints(el);
            let echange = changes.get(view.edge_table(el).name());
            let schange = changes.get(view.vertex_table(src_label).name());
            let dchange = changes.get(view.vertex_table(dst_label).name());
            let stable = |c: Option<&TableChange>| c.is_none_or(TableChange::is_append_only);
            if echange.is_none() && stable(schange) && stable(dchange) {
                // Existing entries are all valid; at most the offset tables
                // must cover newly appended vertex rows.
                ev.push(Arc::clone(&prev.ev[li as usize]));
                ve_out.push(match schange {
                    None => Arc::clone(&prev.ve_out[li as usize]),
                    Some(_) => {
                        Arc::new(prev.ve_out[li as usize].extended(view.vertex_count(src_label)))
                    }
                });
                ve_in.push(match dchange {
                    None => Arc::clone(&prev.ve_in[li as usize]),
                    Some(_) => {
                        Arc::new(prev.ve_in[li as usize].extended(view.vertex_count(dst_label)))
                    }
                });
                continue;
            }
            let (new_ev, new_out, new_in) =
                rebuild_label(prev, view, el, echange, schange, dchange)?;
            ev.push(Arc::new(new_ev));
            ve_out.push(Arc::new(new_out));
            ve_in.push(Arc::new(new_in));
        }
        Ok(GraphIndex { ev, ve_out, ve_in })
    }

    /// Whether label `el`'s structures are shared with `other` (incremental
    /// rebuilds share untouched labels; diagnostics and tests).
    pub fn shares_label_with(&self, other: &GraphIndex, el: LabelId) -> bool {
        let i = el.0 as usize;
        Arc::ptr_eq(&self.ev[i], &other.ev[i])
            && Arc::ptr_eq(&self.ve_out[i], &other.ve_out[i])
            && Arc::ptr_eq(&self.ve_in[i], &other.ve_in[i])
    }

    /// EV-index lookup: source vertex row of edge row `e` (label `el`).
    #[inline]
    pub fn edge_src(&self, el: LabelId, e: RowId) -> RowId {
        self.ev[el.0 as usize].src_rid[e as usize]
    }

    /// EV-index lookup: target vertex row of edge row `e` (label `el`).
    #[inline]
    pub fn edge_dst(&self, el: LabelId, e: RowId) -> RowId {
        self.ev[el.0 as usize].dst_rid[e as usize]
    }

    /// Endpoint of edge `e` in direction `dir` (the vertex reached).
    #[inline]
    pub fn edge_endpoint(&self, el: LabelId, e: RowId, dir: Direction) -> RowId {
        match dir {
            Direction::Out => self.edge_dst(el, e),
            Direction::In => self.edge_src(el, e),
        }
    }

    /// VE-index lookup: `(edges, neighbors)` adjacent to vertex row `v`
    /// through edge label `el` in direction `dir`; sorted by neighbor.
    #[inline]
    pub fn neighbors(&self, el: LabelId, dir: Direction, v: RowId) -> (&[RowId], &[RowId]) {
        match dir {
            Direction::Out => self.ve_out[el.0 as usize].neighbors(v),
            Direction::In => self.ve_in[el.0 as usize].neighbors(v),
        }
    }

    /// Degree of vertex row `v` through `(el, dir)`.
    #[inline]
    pub fn degree(&self, el: LabelId, dir: Direction, v: RowId) -> usize {
        match dir {
            Direction::Out => self.ve_out[el.0 as usize].degree(v),
            Direction::In => self.ve_in[el.0 as usize].degree(v),
        }
    }

    /// Total adjacency entries of `(el, dir)` (= edge count; for tests).
    pub fn adjacency_len(&self, el: LabelId, dir: Direction) -> usize {
        match dir {
            Direction::Out => self.ve_out[el.0 as usize].len(),
            Direction::In => self.ve_in[el.0 as usize].len(),
        }
    }
}

/// Re-derive one touched label from the previous index + the delta (the
/// general arm of [`GraphIndex::rebuild_delta`]).
fn rebuild_label(
    prev: &GraphIndex,
    view: &GraphView,
    el: LabelId,
    echange: Option<&TableChange>,
    schange: Option<&TableChange>,
    dchange: Option<&TableChange>,
) -> Result<(EvIndex, Csr, Csr)> {
    let li = el.0 as usize;
    let prev_ev = &prev.ev[li];
    let m_old = prev_ev.src_rid.len();
    // An absent edge-table change is the identity over the old edge rows.
    let identity = TableChange::new(m_old, Vec::new(), 0);
    let echange = echange.unwrap_or(&identity);
    let smap = |old: RowId| schange.map_or(Some(old), |c| c.new_id(old));
    let dmap = |old: RowId| dchange.map_or(Some(old), |c| c.new_id(old));

    // EV: surviving base edges remapped (validating that no survivor points
    // at a deleted vertex), then newly ingested edges λ-resolved against
    // the merged view.
    let m_new = view.edge_count(el);
    let mut ev = EvIndex {
        src_rid: Vec::with_capacity(m_new),
        dst_rid: Vec::with_capacity(m_new),
    };
    for e in 0..m_old as RowId {
        if echange.is_deleted(e) {
            continue;
        }
        let (Some(s), Some(t)) = (
            smap(prev_ev.src_rid[e as usize]),
            dmap(prev_ev.dst_rid[e as usize]),
        ) else {
            return Err(RelGoError::schema(format!(
                "cannot delete a vertex row still referenced by {}@{e} (λ must stay total)",
                view.schema().edge_label_name(el)
            )));
        };
        ev.src_rid.push(s);
        ev.dst_rid.push(t);
    }
    let mut delta_out = Vec::with_capacity(echange.inserted());
    let mut delta_in = Vec::with_capacity(echange.inserted());
    for i in 0..echange.inserted() {
        let e_new = echange.insert_id(i);
        let s = view.resolve_src(el, e_new)?;
        let t = view.resolve_dst(el, e_new)?;
        ev.src_rid.push(s);
        ev.dst_rid.push(t);
        delta_out.push((s, e_new, t));
        delta_in.push((t, e_new, s));
    }
    delta_out.sort_unstable_by_key(|&(v, e, n)| (v, n, e));
    delta_in.sort_unstable_by_key(|&(v, e, n)| (v, n, e));

    let (src_label, dst_label) = view.schema().edge_endpoints(el);
    let out = prev.ve_out[li].merged_with_delta(
        view.vertex_count(src_label),
        echange,
        &smap,
        &dmap,
        &delta_out,
    )?;
    let ve_in = prev.ve_in[li].merged_with_delta(
        view.vertex_count(dst_label),
        echange,
        &dmap,
        &smap,
        &delta_in,
    )?;
    Ok((ev, out, ve_in))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::RGMapping;
    use crate::view::GraphView;
    use relgo_common::DataType;
    use relgo_storage::table::table_of;
    use relgo_storage::Database;

    fn setup() -> GraphView {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into()],
                vec![2.into(), 2.into(), 100.into()],
                vec![3.into(), 2.into(), 200.into()],
                vec![4.into(), 3.into(), 200.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        g
    }

    #[test]
    fn ev_index_matches_fig5a() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        // Fig 5(a): likes rows map to (person_rowid, message_rowid)
        // l1→(0,0), l2→(1,0), l3→(1,1), l4→(2,1).
        assert_eq!(idx.edge_src(likes, 0), 0);
        assert_eq!(idx.edge_dst(likes, 0), 0);
        assert_eq!(idx.edge_src(likes, 1), 1);
        assert_eq!(idx.edge_dst(likes, 1), 0);
        assert_eq!(idx.edge_src(likes, 3), 2);
        assert_eq!(idx.edge_dst(likes, 3), 1);
    }

    #[test]
    fn ve_index_matches_fig5b() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        // vp1 → [(l1, vm1)]
        let (es, ns) = idx.neighbors(likes, Direction::Out, 0);
        assert_eq!(es, &[0]);
        assert_eq!(ns, &[0]);
        // vp2 → [(l2, vm1), (l3, vm2)]
        let (es, ns) = idx.neighbors(likes, Direction::Out, 1);
        assert_eq!(es, &[1, 2]);
        assert_eq!(ns, &[0, 1]);
        // vp3 → [(l4, vm2)]
        assert_eq!(idx.degree(likes, Direction::Out, 2), 1);
    }

    #[test]
    fn reverse_direction_adjacency() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        // m1 is liked by p1 and p2.
        let (es, ns) = idx.neighbors(likes, Direction::In, 0);
        assert_eq!(ns, &[0, 1]);
        assert_eq!(es.len(), 2);
        // m2 is liked by p2 and p3.
        let (_, ns) = idx.neighbors(likes, Direction::In, 1);
        assert_eq!(ns, &[1, 2]);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        for v in 0..3 {
            let (_, ns) = idx.neighbors(likes, Direction::Out, v);
            assert!(ns.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn adjacency_totals_equal_edge_count() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        assert_eq!(idx.adjacency_len(likes, Direction::Out), 4);
        assert_eq!(idx.adjacency_len(likes, Direction::In), 4);
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::In.reverse(), Direction::Out);
    }

    /// Rebuild the fig-5 database with a committed delta applied by hand,
    /// and check every incremental-path invariant against a from-scratch
    /// build.
    #[test]
    fn rebuild_delta_matches_full_build() {
        use relgo_common::FxHashMap;
        use relgo_storage::TableChange;

        // Base: the fig-5 setup plus a Knows edge label so one label stays
        // untouched by the delta.
        let build_db = |with_delta: bool| {
            let mut db = Database::new();
            let mut person_rows = vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ];
            let mut likes_rows = vec![
                vec![1.into(), 1.into(), 100.into()],
                vec![2.into(), 2.into(), 100.into()],
                vec![3.into(), 2.into(), 200.into()],
                vec![4.into(), 3.into(), 200.into()],
            ];
            if with_delta {
                // Delete likes row 1 (l2), insert a person and two likes —
                // one of them a parallel edge duplicating (Tom, m1).
                likes_rows.remove(1);
                person_rows.push(vec![4.into(), "Ada".into()]);
                likes_rows.push(vec![5.into(), 4.into(), 200.into()]);
                likes_rows.push(vec![6.into(), 1.into(), 100.into()]);
            }
            db.add_table(table_of(
                "Person",
                &[("person_id", DataType::Int), ("name", DataType::Str)],
                person_rows,
            ));
            db.add_table(table_of(
                "Message",
                &[("message_id", DataType::Int)],
                vec![vec![100.into()], vec![200.into()]],
            ));
            db.add_table(table_of(
                "Likes",
                &[
                    ("likes_id", DataType::Int),
                    ("pid", DataType::Int),
                    ("mid", DataType::Int),
                ],
                likes_rows,
            ));
            db.add_table(table_of(
                "Knows",
                &[
                    ("knows_id", DataType::Int),
                    ("pid1", DataType::Int),
                    ("pid2", DataType::Int),
                ],
                vec![vec![1.into(), 1.into(), 2.into()]],
            ));
            db.set_primary_key("Person", "person_id").unwrap();
            db.set_primary_key("Message", "message_id").unwrap();
            db.set_primary_key("Likes", "likes_id").unwrap();
            db.set_primary_key("Knows", "knows_id").unwrap();
            db
        };
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");

        let mut base_db = build_db(false);
        let mut base = GraphView::build(&mut base_db, mapping.clone()).unwrap();
        base.build_index().unwrap();

        let mut merged_db = build_db(true);
        let mut fresh = GraphView::build(&mut merged_db, mapping.clone()).unwrap();
        fresh.build_index().unwrap();

        let mut changes: FxHashMap<String, TableChange> = FxHashMap::default();
        changes.insert("Person".to_string(), TableChange::new(3, vec![], 1));
        changes.insert("Likes".to_string(), TableChange::new(4, vec![1], 2));
        let mut inc_db = build_db(true);
        let inc = GraphView::rebuild_delta(&base, &mut inc_db, &changes).unwrap();

        let likes = inc.schema().edge_label_id("Likes").unwrap();
        let knows = inc.schema().edge_label_id("Knows").unwrap();
        let inc_idx = inc.index().unwrap();
        let fresh_idx = fresh.index().unwrap();
        for el in [likes, knows] {
            let m = inc.edge_count(el);
            assert_eq!(m, fresh.edge_count(el));
            for e in 0..m as RowId {
                assert_eq!(inc_idx.edge_src(el, e), fresh_idx.edge_src(el, e));
                assert_eq!(inc_idx.edge_dst(el, e), fresh_idx.edge_dst(el, e));
            }
            let (sl, dl) = inc.schema().edge_endpoints(el);
            for v in 0..inc.vertex_count(sl) as RowId {
                assert_eq!(
                    inc_idx.neighbors(el, Direction::Out, v),
                    fresh_idx.neighbors(el, Direction::Out, v),
                    "{el:?} out {v}"
                );
            }
            for v in 0..inc.vertex_count(dl) as RowId {
                assert_eq!(
                    inc_idx.neighbors(el, Direction::In, v),
                    fresh_idx.neighbors(el, Direction::In, v),
                    "{el:?} in {v}"
                );
            }
        }
        // Knows's edge table is untouched, but Person grew append-only: the
        // EV index is shared and only the out-CSR offsets were extended.
        assert!(Arc::ptr_eq(
            &inc_idx.ev[knows.0 as usize],
            &base.index().unwrap().ev[knows.0 as usize]
        ));
        assert!(!inc_idx.shares_label_with(base.index().unwrap(), likes));
        // Changed-label flags follow table + endpoint reachability.
        let (cv, ce) = base.changed_label_flags(&changes);
        assert_eq!(cv, vec![true, false]);
        assert_eq!(ce, vec![true, true], "Knows inherits Person's change");
    }

    #[test]
    fn rebuild_delta_rejects_dangling_survivors() {
        use relgo_common::FxHashMap;
        use relgo_storage::TableChange;
        let g = setup();
        // Delete person row 1 (Bob) without deleting Bob's likes: the
        // surviving edges dangle, so the rebuild must fail.
        let mut merged_db = Database::new();
        merged_db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![vec![1.into(), "Tom".into()], vec![3.into(), "David".into()]],
        ));
        merged_db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        merged_db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into()],
                vec![2.into(), 2.into(), 100.into()],
                vec![3.into(), 2.into(), 200.into()],
                vec![4.into(), 3.into(), 200.into()],
            ],
        ));
        merged_db.set_primary_key("Person", "person_id").unwrap();
        merged_db.set_primary_key("Message", "message_id").unwrap();
        merged_db.set_primary_key("Likes", "likes_id").unwrap();
        let mut changes: FxHashMap<String, TableChange> = FxHashMap::default();
        changes.insert("Person".to_string(), TableChange::new(3, vec![1], 0));
        let err = GraphView::rebuild_delta(&g, &mut merged_db, &changes).unwrap_err();
        assert!(err.to_string().contains("λ must stay total"), "{err}");
    }

    #[test]
    fn edge_endpoint_by_direction() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        assert_eq!(idx.edge_endpoint(likes, 1, Direction::Out), 0, "→ message");
        assert_eq!(idx.edge_endpoint(likes, 1, Direction::In), 1, "→ person");
    }
}
