//! # relgo-graph
//!
//! The property-graph lens over relational tables: `RGMapping`, the graph
//! schema, and GRainDB-style graph indexes.
//!
//! Paper correspondence:
//!
//! * §2.1 *RGMapping* — [`mapping::RGMapping`] maps vertex relations and
//!   edge relations (with λˢ/λᵗ total functions derived from foreign keys)
//!   into a property graph. No graph is ever materialized.
//! * §3.2.1 *Graph Index* — [`index::GraphIndex`] holds the **EV-index**
//!   (per-edge source/target row ids, i.e. the extra rowid columns of
//!   GRainDB) and the **VE-index** (CSR adjacency per edge label and
//!   direction, neighbor lists sorted to support intersection).
//! * Graph statistics ([`stats::GraphStats`]) — label cardinalities and
//!   average degrees, the `d̄` of the paper's cost model.

pub mod index;
pub mod mapping;
pub mod schema;
pub mod stats;
pub mod view;

pub use index::{Direction, GraphIndex};
pub use mapping::{EdgeMapping, RGMapping, VertexMapping};
pub use schema::GraphSchema;
pub use stats::GraphStats;
pub use view::GraphView;
