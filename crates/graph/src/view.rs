//! The graph view: a property-graph lens over relational tables.
//!
//! A [`GraphView`] owns no graph data; it resolves the RGMapping against a
//! [`Database`] into label→table bindings, key indexes for the λˢ/λᵗ total
//! functions, and (on demand) the GRainDB-style [`GraphIndex`].

use crate::index::GraphIndex;
use crate::mapping::RGMapping;
use crate::schema::GraphSchema;
use crate::stats::GraphStats;
use relgo_common::{FxHashMap, LabelId, RelGoError, Result, RowId};
use relgo_storage::{Database, KeyIndex, Table, TableChange};
use std::sync::Arc;

/// A resolved, queryable property-graph view over relations.
#[derive(Debug, Clone)]
pub struct GraphView {
    schema: GraphSchema,
    mapping: RGMapping,
    vertex_tables: Vec<Arc<Table>>,
    edge_tables: Vec<Arc<Table>>,
    /// Column index of the source / target foreign key in each edge table.
    edge_src_col: Vec<usize>,
    edge_dst_col: Vec<usize>,
    /// Column index of each vertex table's primary key.
    vertex_pk_col: Vec<usize>,
    /// Unique key index over each vertex table's primary key — the runtime
    /// realization of the λ total functions when no graph index exists.
    vertex_pk_index: Vec<Arc<KeyIndex>>,
    /// GRainDB-style graph index (EV + VE); built on demand.
    index: Option<Arc<GraphIndex>>,
}

impl GraphView {
    /// Resolve `mapping` against `db`. Validates the mapping, binds tables,
    /// and builds the vertex primary-key indexes. Does **not** build the
    /// graph index — call [`GraphView::build_index`] for that.
    pub fn build(db: &mut Database, mapping: RGMapping) -> Result<Self> {
        mapping.validate(db)?;
        let schema = GraphSchema::from_mapping(&mapping)?;

        let mut vertex_tables = Vec::with_capacity(mapping.vertices().len());
        let mut vertex_pk_col = Vec::with_capacity(mapping.vertices().len());
        let mut vertex_pk_index = Vec::with_capacity(mapping.vertices().len());
        for v in mapping.vertices() {
            let table = Arc::clone(db.table(&v.table)?);
            let pk = db
                .primary_key(&v.table)
                .ok_or_else(|| RelGoError::schema(format!("no primary key on {}", v.table)))?
                .to_string();
            vertex_pk_col.push(table.schema().index_of(&pk)?);
            vertex_pk_index.push(db.key_index(&v.table, &pk)?);
            vertex_tables.push(table);
        }

        let mut edge_tables = Vec::with_capacity(mapping.edges().len());
        let mut edge_src_col = Vec::with_capacity(mapping.edges().len());
        let mut edge_dst_col = Vec::with_capacity(mapping.edges().len());
        for e in mapping.edges() {
            let table = Arc::clone(db.table(&e.table)?);
            edge_src_col.push(table.schema().index_of(&e.src_key)?);
            edge_dst_col.push(table.schema().index_of(&e.dst_key)?);
            edge_tables.push(table);
        }

        Ok(GraphView {
            schema,
            mapping,
            vertex_tables,
            edge_tables,
            edge_src_col,
            edge_dst_col,
            vertex_pk_col,
            vertex_pk_index,
            index: None,
        })
    }

    /// Build (or rebuild) the GRainDB-style graph index over this view.
    pub fn build_index(&mut self) -> Result<()> {
        let index = GraphIndex::build(self)?;
        self.index = Some(Arc::new(index));
        Ok(())
    }

    /// Incrementally rebuild a view over the merged catalog produced by a
    /// committed delta (`relgo-delta`): tables are re-bound from `db`,
    /// primary-key indexes of changed vertex tables are rebuilt (unchanged
    /// ones keep their cached `Arc`s), and the graph index — when `prev`
    /// has one — is refreshed label-by-label through
    /// [`GraphIndex::rebuild_delta`], sharing every untouched label with
    /// the previous epoch's index.
    pub fn rebuild_delta(
        prev: &GraphView,
        db: &mut Database,
        changes: &FxHashMap<String, TableChange>,
    ) -> Result<GraphView> {
        let mapping = prev.mapping.clone();
        let mut view = GraphView::build(db, mapping)?;
        if let Some(prev_index) = prev.index() {
            let index = GraphIndex::rebuild_delta(prev_index, &view, changes)?;
            view.index = Some(Arc::new(index));
        }
        Ok(view)
    }

    /// Per-label changed flags for a committed delta: a vertex label is
    /// changed when its backing table is; an edge label when its table *or
    /// either endpoint table* is (endpoint row counts feed its degree
    /// statistics, and endpoint deletions shift its row ids). The flags
    /// drive statistics refresh ([`GraphStats::refresh_delta`]) and GLogue
    /// cache retention.
    pub fn changed_label_flags(
        &self,
        changes: &FxHashMap<String, TableChange>,
    ) -> (Vec<bool>, Vec<bool>) {
        let nv = self.schema.vertex_label_count();
        let ne = self.schema.edge_label_count();
        let changed_v: Vec<bool> = (0..nv as u16)
            .map(|l| changes.contains_key(self.vertex_tables[l as usize].name()))
            .collect();
        let changed_e: Vec<bool> = (0..ne as u16)
            .map(|l| {
                let el = LabelId(l);
                let (src, dst) = self.schema.edge_endpoints(el);
                changes.contains_key(self.edge_tables[l as usize].name())
                    || changed_v[src.0 as usize]
                    || changed_v[dst.0 as usize]
            })
            .collect();
        (changed_v, changed_e)
    }

    /// The graph index, if built.
    pub fn index(&self) -> Option<&Arc<GraphIndex>> {
        self.index.as_ref()
    }

    /// The graph schema.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    /// The originating mapping.
    pub fn mapping(&self) -> &RGMapping {
        &self.mapping
    }

    /// Vertex table backing label `l`.
    pub fn vertex_table(&self, l: LabelId) -> &Arc<Table> {
        &self.vertex_tables[l.0 as usize]
    }

    /// Edge table backing label `l`.
    pub fn edge_table(&self, l: LabelId) -> &Arc<Table> {
        &self.edge_tables[l.0 as usize]
    }

    /// Number of vertices with label `l`.
    pub fn vertex_count(&self, l: LabelId) -> usize {
        self.vertex_tables[l.0 as usize].num_rows()
    }

    /// Number of edges with label `l`.
    pub fn edge_count(&self, l: LabelId) -> usize {
        self.edge_tables[l.0 as usize].num_rows()
    }

    /// Primary-key column index of vertex label `l`.
    pub fn vertex_pk_col(&self, l: LabelId) -> usize {
        self.vertex_pk_col[l.0 as usize]
    }

    /// Source FK column index of edge label `l`.
    pub fn edge_src_col(&self, l: LabelId) -> usize {
        self.edge_src_col[l.0 as usize]
    }

    /// Target FK column index of edge label `l`.
    pub fn edge_dst_col(&self, l: LabelId) -> usize {
        self.edge_dst_col[l.0 as usize]
    }

    /// λˢ: resolve the source vertex row of edge row `erow` of label `el`
    /// through a hash lookup on the vertex primary key (the *no-index* path;
    /// with a graph index, use [`GraphIndex::edge_src`] instead).
    pub fn resolve_src(&self, el: LabelId, erow: RowId) -> Result<RowId> {
        let (src_label, _) = self.schema.edge_endpoints(el);
        let key = self.edge_tables[el.0 as usize]
            .column(self.edge_src_col[el.0 as usize])
            .get_int(erow)
            .ok_or_else(|| {
                RelGoError::execution(format!(
                    "λs: NULL source key in edge {}@{erow}",
                    self.schema.edge_label_name(el)
                ))
            })?;
        self.vertex_pk_index[src_label.0 as usize]
            .lookup(key)
            .ok_or_else(|| {
                RelGoError::execution(format!(
                    "λs: dangling source key {key} in edge {}@{erow} (λ must be total)",
                    self.schema.edge_label_name(el)
                ))
            })
    }

    /// λᵗ: resolve the target vertex row of edge row `erow` of label `el`.
    pub fn resolve_dst(&self, el: LabelId, erow: RowId) -> Result<RowId> {
        let (_, dst_label) = self.schema.edge_endpoints(el);
        let key = self.edge_tables[el.0 as usize]
            .column(self.edge_dst_col[el.0 as usize])
            .get_int(erow)
            .ok_or_else(|| {
                RelGoError::execution(format!(
                    "λt: NULL target key in edge {}@{erow}",
                    self.schema.edge_label_name(el)
                ))
            })?;
        self.vertex_pk_index[dst_label.0 as usize]
            .lookup(key)
            .ok_or_else(|| {
                RelGoError::execution(format!(
                    "λt: dangling target key {key} in edge {}@{erow} (λ must be total)",
                    self.schema.edge_label_name(el)
                ))
            })
    }

    /// Compute label-level statistics (cardinalities, average degrees).
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::RGMapping;
    use relgo_common::DataType;
    use relgo_storage::table::table_of;

    /// The running example of the paper's Fig. 2.
    pub(crate) fn fig2_db() -> Database {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[
                ("person_id", DataType::Int),
                ("name", DataType::Str),
                ("place_id", DataType::Int),
            ],
            vec![
                vec![1.into(), "Tom".into(), 10.into()],
                vec![2.into(), "Bob".into(), 20.into()],
                vec![3.into(), "David".into(), 30.into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int), ("content", DataType::Str)],
            vec![vec![100.into(), "m1".into()], vec![200.into(), "m2".into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
                ("date", DataType::Date),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into(), Value::Date(31)],
                vec![2.into(), 2.into(), 100.into(), Value::Date(28)],
                vec![3.into(), 2.into(), 200.into(), Value::Date(20)],
                vec![4.into(), 3.into(), 200.into(), Value::Date(21)],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        db
    }

    use relgo_common::Value;

    pub(crate) fn fig2_mapping() -> RGMapping {
        RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person")
    }

    #[test]
    fn build_resolves_tables_and_counts() {
        let mut db = fig2_db();
        let g = GraphView::build(&mut db, fig2_mapping()).unwrap();
        let person = g.schema().vertex_label_id("Person").unwrap();
        let message = g.schema().vertex_label_id("Message").unwrap();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        assert_eq!(g.vertex_count(person), 3);
        assert_eq!(g.vertex_count(message), 2);
        assert_eq!(g.edge_count(likes), 4);
    }

    #[test]
    fn lambda_functions_resolve_rows() {
        let mut db = fig2_db();
        let g = GraphView::build(&mut db, fig2_mapping()).unwrap();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        // Edge l2 = row 1: Bob (person row 1) likes m1 (message row 0).
        assert_eq!(g.resolve_src(likes, 1).unwrap(), 1);
        assert_eq!(g.resolve_dst(likes, 1).unwrap(), 0);
        let knows = g.schema().edge_label_id("Knows").unwrap();
        // Edge k4 = row 3: David (row 2) knows Bob (row 1).
        assert_eq!(g.resolve_src(knows, 3).unwrap(), 2);
        assert_eq!(g.resolve_dst(knows, 3).unwrap(), 1);
    }

    #[test]
    fn dangling_key_is_an_error() {
        let mut db = fig2_db();
        db.add_table(table_of(
            "Bad",
            &[
                ("bad_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
            ],
            vec![vec![1.into(), 99.into(), 100.into()]],
        ));
        db.set_primary_key("Bad", "bad_id").unwrap();
        let m = fig2_mapping().edge("Bad", "pid", "Person", "mid", "Message");
        let g = GraphView::build(&mut db, m).unwrap();
        let bad = g.schema().edge_label_id("Bad").unwrap();
        assert!(g.resolve_src(bad, 0).is_err());
        assert!(g.resolve_dst(bad, 0).is_ok());
    }

    #[test]
    fn index_is_lazy() {
        let mut db = fig2_db();
        let mut g = GraphView::build(&mut db, fig2_mapping()).unwrap();
        assert!(g.index().is_none());
        g.build_index().unwrap();
        assert!(g.index().is_some());
    }
}
