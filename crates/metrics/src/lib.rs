//! # relgo-metrics
//!
//! A std-only metrics registry for the serving stack: atomic [`Counter`]s
//! and [`Gauge`]s, fixed-bucket latency [`Histogram`]s with quantile
//! extraction, and a [`Registry`] that hands out cheap typed handles and
//! renders everything in the Prometheus text exposition format.
//!
//! Design constraints, in order:
//!
//! * **Hot-path cost** — a handle is an `Arc` around one (or a few) atomic
//!   integers; recording is a relaxed `fetch_add`. No locks, no allocation,
//!   no formatting anywhere near query execution. All string work happens at
//!   scrape time.
//! * **No dependencies** — the build container has no crates.io access, so
//!   everything (including the exposition-format renderer and the little
//!   scrape parser used by tests) is hand-rolled on `std`.
//! * **Foldability** — subsystems that already keep their own counters
//!   (plan-cache metrics, WAL stats) are *folded into a snapshot* at scrape
//!   time via [`Snapshot::push_counter`]/[`Snapshot::push_gauge`] rather
//!   than double-counted at record time.
//!
//! The sibling [`trace`] module adds [`trace::QueryTrace`], a span recorder
//! for the query lifecycle (parse → parameterize → cache probe →
//! optimize/rebind → execute → materialize) whose per-stage durations land
//! in registry histograms.

pub mod text;
pub mod trace;

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter (Prometheus `counter`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh, unregistered counter (registry-issued handles are shared).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (Prometheus `gauge`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtract `d`.
    #[inline]
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds in microseconds: powers of four from
/// 1 µs to ~16.8 s. Fourteen finite buckets plus the implicit `+Inf`
/// overflow bucket — wide enough that a scheduler hiccup lands in a finite
/// bucket while p50 on a µs-scale path still has resolution.
pub const DEFAULT_LATENCY_BOUNDS_US: [u64; 14] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
    67_108_864,
];

/// A fixed-bucket histogram of durations (Prometheus `histogram`). Bounds
/// are inclusive upper bounds in microseconds; one extra overflow bucket
/// catches everything above the last bound. Recording is two relaxed
/// `fetch_add`s plus a branchless-ish bucket scan over ≤ 15 bounds.
#[derive(Debug)]
pub struct Histogram {
    bounds_us: Vec<u64>,
    /// `bounds_us.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over explicit bucket bounds (sorted ascending, deduped).
    pub fn new(bounds_us: &[u64]) -> Histogram {
        let mut bounds: Vec<u64> = bounds_us.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds_us: bounds,
            buckets,
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// A histogram over [`DEFAULT_LATENCY_BOUNDS_US`].
    pub fn latency() -> Histogram {
        Histogram::new(&DEFAULT_LATENCY_BOUNDS_US)
    }

    /// Record a duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record a raw microsecond value.
    #[inline]
    pub fn record_us(&self, us: u64) {
        let idx = self
            .bounds_us
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(self.bounds_us.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds_us: self.bounds_us.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile extraction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds (µs); one overflow bucket follows.
    pub bounds_us: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts; `bounds_us.len() + 1`
    /// entries, the last being the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all recorded values (µs).
    pub sum_us: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket the
    /// rank falls into — a conservative estimate. `None` when nothing was
    /// recorded or the rank falls into the overflow bucket (the latency is
    /// then not provably finite within the bucket range).
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds_us.get(i).map(|&b| Duration::from_micros(b));
            }
        }
        None
    }

    /// The median ([`HistogramSnapshot::quantile`] at 0.5).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.5)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> Option<Duration> {
        self.quantile(0.9)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }

    /// Mean recorded duration (`None` when empty).
    pub fn mean(&self) -> Option<Duration> {
        self.sum_us
            .checked_div(self.count)
            .map(Duration::from_micros)
    }

    /// Counter-wise difference since `earlier` (same bounds required).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(self.bounds_us, earlier.bounds_us, "histogram bounds differ");
        HistogramSnapshot {
            bounds_us: self.bounds_us.clone(),
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a - b)
                .collect(),
            sum_us: self.sum_us - earlier.sum_us,
            count: self.count - earlier.count,
        }
    }
}

/// The value a sample carries.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotonic counter.
    Counter(u64),
    /// Up/down gauge.
    Gauge(i64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// One named series in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric name (Prometheus conventions: `snake_case`, `_total` suffix
    /// for counters).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: SampleValue,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// A registry of named metric series. Handles are issued once per
/// `(name, labels)` pair — asking again returns the *same* underlying
/// atomic, so any subsystem can look up "its" counter without coordinating
/// ownership. The registry itself is only locked at registration and
/// scrape time, never on the record path.
#[derive(Default)]
pub struct Registry {
    series: Mutex<Vec<Series>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("series", &self.series.lock().unwrap().len())
            .finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        extract: impl Fn(&Metric) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Metric),
    ) -> Arc<T> {
        let labels = owned_labels(labels);
        let mut series = self.series.lock().unwrap();
        if let Some(s) = series.iter().find(|s| s.name == name && s.labels == labels) {
            return extract(&s.metric).unwrap_or_else(|| {
                panic!("metric {name} already registered with a different type")
            });
        }
        let (handle, metric) = make();
        // A Prometheus family (one name) has exactly one type, regardless
        // of labels — a mixed family renders one `# TYPE` line over
        // samples of different kinds, which strict scrapers reject. Catch
        // it at registration, not scrape time.
        if let Some(conflict) = series.iter().find(|s| s.name == name) {
            if conflict.metric.kind() != metric.kind() {
                panic!(
                    "metric {name} already registered as a {}, cannot re-register as a {}",
                    conflict.metric.kind(),
                    metric.kind()
                );
            }
        }
        series.push(Series {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            metric,
        });
        handle
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            labels,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Metric::Counter(c))
            },
        )
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            labels,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Metric::Gauge(g))
            },
        )
    }

    /// Register (or look up) an unlabeled latency histogram over
    /// [`DEFAULT_LATENCY_BOUNDS_US`].
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Register (or look up) a labeled latency histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            labels,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::latency());
                (Arc::clone(&h), Metric::Histogram(h))
            },
        )
    }

    /// Point-in-time copy of every registered series, in registration
    /// order. External counters can be folded in afterwards via
    /// [`Snapshot::push_counter`] before rendering.
    pub fn snapshot(&self) -> Snapshot {
        let series = self.series.lock().unwrap();
        Snapshot {
            samples: series
                .iter()
                .map(|s| Sample {
                    name: s.name.clone(),
                    help: s.help.clone(),
                    labels: s.labels.clone(),
                    value: match &s.metric {
                        Metric::Counter(c) => SampleValue::Counter(c.get()),
                        Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                        Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// A point-in-time collection of samples, renderable as Prometheus text.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// The samples, grouped by name at render time.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Fold an externally collected counter into the snapshot (subsystems
    /// like the plan cache keep their own atomics; scrape time is when they
    /// join the registry's view).
    pub fn push_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.samples.push(Sample {
            name: name.to_string(),
            help: help.to_string(),
            labels: owned_labels(labels),
            value: SampleValue::Counter(value),
        });
    }

    /// Fold an externally collected gauge into the snapshot.
    pub fn push_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: i64) {
        self.samples.push(Sample {
            name: name.to_string(),
            help: help.to_string(),
            labels: owned_labels(labels),
            value: SampleValue::Gauge(value),
        });
    }

    /// The distinct series names in the snapshot.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        names
    }

    /// The value of the first sample matching `name` and all of
    /// `label_filter` (test/reconciliation helper).
    pub fn get(&self, name: &str, label_filter: &[(&str, &str)]) -> Option<&SampleValue> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && label_filter
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| &s.value)
    }

    /// Sum of every counter sample named `name`, across labels.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                SampleValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Render in the Prometheus text exposition format (version 0.0.4):
    /// `# HELP` / `# TYPE` per family, histograms expanded into cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`, durations in
    /// seconds.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for name in self.names() {
            let family: Vec<&Sample> = self.samples.iter().filter(|s| s.name == name).collect();
            let first = family[0];
            let kind = match first.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            writeln!(out, "# HELP {name} {}", escape_help(&first.help)).unwrap();
            writeln!(out, "# TYPE {name} {kind}").unwrap();
            for s in family {
                match &s.value {
                    SampleValue::Counter(v) => {
                        writeln!(out, "{}{} {v}", name, label_block(&s.labels, &[])).unwrap();
                    }
                    SampleValue::Gauge(v) => {
                        writeln!(out, "{}{} {v}", name, label_block(&s.labels, &[])).unwrap();
                    }
                    SampleValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, &c) in h.counts.iter().enumerate() {
                            cumulative += c;
                            let le = match h.bounds_us.get(i) {
                                Some(&b) => format_seconds(b),
                                None => "+Inf".to_string(),
                            };
                            writeln!(
                                out,
                                "{}_bucket{} {cumulative}",
                                name,
                                label_block(&s.labels, &[("le", &le)])
                            )
                            .unwrap();
                        }
                        writeln!(
                            out,
                            "{}_sum{} {}",
                            name,
                            label_block(&s.labels, &[]),
                            format_seconds(h.sum_us)
                        )
                        .unwrap();
                        writeln!(
                            out,
                            "{}_count{} {}",
                            name,
                            label_block(&s.labels, &[]),
                            h.count
                        )
                        .unwrap();
                    }
                }
            }
        }
        out
    }
}

/// Microseconds as a seconds literal (`1_500_000` → `"1.5"`).
fn format_seconds(us: u64) -> String {
    let mut s = format!("{}", us as f64 / 1e6);
    if !s.contains('.') && !s.contains('e') {
        s.push_str(".0"); // keep `le` values unambiguous floats
    }
    s
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render `{k="v",...}` from the sample labels plus extras (`le`), or an
/// empty string when there are none.
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))),
    );
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("relgo_test_total", "test counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same underlying atomic.
        let c2 = r.counter("relgo_test_total", "test counter");
        c2.inc();
        assert_eq!(c.get(), 6);
        let g = r.gauge("relgo_test_gauge", "test gauge");
        g.set(7);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("relgo_q_total", "q", &[("path", "run")]);
        let b = r.counter_with("relgo_q_total", "q", &[("path", "cached")]);
        a.inc();
        b.add(2);
        let snap = r.snapshot();
        assert_eq!(
            snap.get("relgo_q_total", &[("path", "run")]),
            Some(&SampleValue::Counter(1))
        );
        assert_eq!(
            snap.get("relgo_q_total", &[("path", "cached")]),
            Some(&SampleValue::Counter(2))
        );
        assert_eq!(snap.counter_sum("relgo_q_total"), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        for us in [5, 7, 50, 500, 800] {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.counts, vec![2, 1, 2, 0]);
        assert_eq!(s.sum_us, 5 + 7 + 50 + 500 + 800);
        // Ranks: p50 → rank 3 → bucket ≤100; p99 → rank 5 → bucket ≤1000.
        assert_eq!(s.p50(), Some(Duration::from_micros(100)));
        assert_eq!(s.p99(), Some(Duration::from_micros(1000)));
        assert!(s.mean().is_some());
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(&[10]);
        assert_eq!(h.snapshot().p99(), None, "empty histogram");
        h.record_us(100); // overflow bucket
        assert_eq!(h.snapshot().p99(), None, "overflow rank is not finite");
        h.record_us(1);
        // p50 rank 1 lands in the finite bucket.
        assert_eq!(h.snapshot().p50(), Some(Duration::from_micros(10)));
    }

    #[test]
    fn histogram_snapshot_since() {
        let h = Histogram::new(&[10, 100]);
        h.record_us(5);
        let before = h.snapshot();
        h.record_us(50);
        h.record_us(7);
        let d = h.snapshot().since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.counts, vec![1, 1, 0]);
    }

    #[test]
    fn default_latency_bounds_are_wide() {
        let h = Histogram::latency();
        h.record(Duration::from_secs(30));
        assert_eq!(
            h.snapshot().quantile(1.0),
            Some(Duration::from_micros(67_108_864)),
            "30 s lands in a finite bucket"
        );
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let r = Registry::new();
        r.counter_with("relgo_q_total", "queries", &[("path", "run")])
            .add(3);
        r.gauge("relgo_conn", "connections").set(2);
        let h = r.histogram("relgo_lat_seconds", "latency");
        h.record_us(3);
        h.record_us(70_000_000); // overflow
        let mut snap = r.snapshot();
        snap.push_counter("relgo_cache_hits_total", "cache hits", &[], 9);
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE relgo_q_total counter"));
        assert!(text.contains("relgo_q_total{path=\"run\"} 3"));
        assert!(text.contains("# TYPE relgo_conn gauge"));
        assert!(text.contains("relgo_conn 2"));
        assert!(text.contains("# TYPE relgo_lat_seconds histogram"));
        assert!(text.contains("relgo_lat_seconds_bucket{le=\"0.000001\"} 0"));
        assert!(text.contains("relgo_lat_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("relgo_lat_seconds_count 2"));
        assert!(text.contains("relgo_cache_hits_total 9"));
        text::validate(&text).expect("exposition format is valid");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn cross_label_type_conflict_panics() {
        let r = Registry::new();
        r.counter_with("relgo_mixed_family", "as counter", &[("path", "a")]);
        // Same family name, different labels, different type: still a
        // malformed family — must panic rather than render mixed kinds.
        r.gauge_with("relgo_mixed_family", "as gauge", &[("path", "b")]);
    }

    #[test]
    fn snapshot_names_preserve_first_seen_order() {
        let r = Registry::new();
        r.counter("b_total", "b");
        r.counter("a_total", "a");
        r.counter_with("b_total", "b", &[("x", "1")]);
        assert_eq!(r.snapshot().names(), vec!["b_total", "a_total"]);
    }
}
