//! Query-lifecycle tracing: a [`QueryTrace`] times each stage a query
//! passes through (parse → parameterize → cache probe → optimize/rebind →
//! execute → materialize → serialize, plus the ingest-side WAL append) and
//! folds into [`StageTimings`], whose [`StageTimings::coverage`]
//! quantifies how much of the measured end-to-end latency the stages
//! account for — the self-check the `figserve` figure enforces (≥ 96%).

use std::time::{Duration, Instant};

/// A stage of the query lifecycle, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Query construction / template instantiation.
    Parse,
    /// Literal extraction into a parameterized cache key.
    Parameterize,
    /// Plan-cache lookup (hit or miss).
    CacheProbe,
    /// Full optimization on a cache miss.
    Optimize,
    /// Parameter rebinding of a cached/pinned plan.
    Rebind,
    /// Physical-plan execution.
    Execute,
    /// Result materialization / response encoding.
    Materialize,
    /// Wire serialization of the response body at the serving edge.
    Serialize,
    /// Write-ahead-log append + group-commit sync of an ingest commit.
    WalAppend,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 9] = [
        Stage::Parse,
        Stage::Parameterize,
        Stage::CacheProbe,
        Stage::Optimize,
        Stage::Rebind,
        Stage::Execute,
        Stage::Materialize,
        Stage::Serialize,
        Stage::WalAppend,
    ];

    /// Stable label value used in metric series (`stage="execute"`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Parameterize => "parameterize",
            Stage::CacheProbe => "cache_probe",
            Stage::Optimize => "optimize",
            Stage::Rebind => "rebind",
            Stage::Execute => "execute",
            Stage::Materialize => "materialize",
            Stage::Serialize => "serialize",
            Stage::WalAppend => "wal_append",
        }
    }

    fn idx(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Parameterize => 1,
            Stage::CacheProbe => 2,
            Stage::Optimize => 3,
            Stage::Rebind => 4,
            Stage::Execute => 5,
            Stage::Materialize => 6,
            Stage::Serialize => 7,
            Stage::WalAppend => 8,
        }
    }
}

/// An in-flight trace of one query. Start it before the first stage, charge
/// stage durations as they happen, and [`QueryTrace::finish`] to freeze the
/// wall-clock total alongside the per-stage breakdown.
#[derive(Debug)]
pub struct QueryTrace {
    started: Instant,
    stages: [Duration; 9],
}

impl QueryTrace {
    /// Begin tracing now.
    pub fn start() -> QueryTrace {
        QueryTrace {
            started: Instant::now(),
            stages: [Duration::ZERO; 9],
        }
    }

    /// Run `f`, charging its wall time to `stage`.
    #[inline]
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(stage, t0.elapsed());
        out
    }

    /// Charge an externally measured duration to `stage` (for code paths
    /// that already time themselves, e.g. `QueryOutcome::exec_time`).
    #[inline]
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.stages[stage.idx()] += d;
    }

    /// Freeze the trace: per-stage durations plus total wall time since
    /// [`QueryTrace::start`].
    pub fn finish(self) -> StageTimings {
        StageTimings {
            stages: self.stages,
            total: self.started.elapsed(),
        }
    }
}

/// A completed trace: per-stage durations and the end-to-end wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    stages: [Duration; 9],
    /// End-to-end wall time of the traced region.
    pub total: Duration,
}

impl StageTimings {
    /// The time charged to `stage`.
    pub fn get(&self, stage: Stage) -> Duration {
        self.stages[stage.idx()]
    }

    /// Charge an after-the-fact stage measured *outside* the traced region
    /// (e.g. response serialization at the serving edge, which happens
    /// after the session froze the trace). The total extends by the same
    /// amount so coverage stays consistent.
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.stages[stage.idx()] += d;
        self.total += d;
    }

    /// `(stage, duration)` for every stage with nonzero time, in pipeline
    /// order.
    pub fn nonzero(&self) -> Vec<(Stage, Duration)> {
        Stage::ALL
            .iter()
            .filter_map(|&s| {
                let d = self.get(s);
                (!d.is_zero()).then_some((s, d))
            })
            .collect()
    }

    /// Sum of all per-stage durations.
    pub fn accounted(&self) -> Duration {
        self.stages.iter().sum()
    }

    /// Fraction of the end-to-end total the stages account for, in
    /// `[0, 1]`-ish (can exceed 1 slightly if stages overlap). `1.0` when
    /// the total is zero.
    pub fn coverage(&self) -> f64 {
        if self.total.is_zero() {
            1.0
        } else {
            self.accounted().as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Accumulate another trace's timings (totals add; used when a batch
    /// reports one merged trace).
    pub fn merge(&mut self, other: &StageTimings) {
        for i in 0..self.stages.len() {
            self.stages[i] += other.stages[i];
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stage_names_are_distinct() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }

    #[test]
    fn trace_accumulates_and_covers() {
        let mut t = QueryTrace::start();
        t.time(Stage::Execute, || {
            std::thread::sleep(Duration::from_millis(5))
        });
        t.add(Stage::Optimize, Duration::from_millis(2));
        t.add(Stage::Execute, Duration::from_millis(1));
        let timings = t.finish();
        assert!(timings.get(Stage::Execute) >= Duration::from_millis(6));
        assert_eq!(timings.get(Stage::Parse), Duration::ZERO);
        // Total covers the timed sleep but not externally `add`ed durations.
        assert!(timings.total >= Duration::from_millis(5));
        assert!(timings.accounted() >= Duration::from_millis(8));
        assert_eq!(timings.nonzero().len(), 2);
    }

    #[test]
    fn coverage_of_empty_trace_is_one() {
        assert_eq!(StageTimings::default().coverage(), 1.0);
    }

    #[test]
    fn post_finish_add_extends_stage_and_total() {
        let timings = {
            let mut t = QueryTrace::start();
            t.add(Stage::Execute, Duration::from_millis(4));
            t.finish()
        };
        let mut with_edge = timings;
        with_edge.add(Stage::Serialize, Duration::from_millis(2));
        assert_eq!(with_edge.get(Stage::Serialize), Duration::from_millis(2));
        assert_eq!(
            with_edge.total,
            timings.total + Duration::from_millis(2),
            "the total tracks the after-the-fact charge"
        );
        assert_eq!(with_edge.nonzero().len(), 2);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = StageTimings::default();
        let mut t = QueryTrace::start();
        t.add(Stage::Execute, Duration::from_millis(3));
        let b = t.finish();
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.get(Stage::Execute), Duration::from_millis(6));
    }
}
