//! A minimal parser/validator for the Prometheus text exposition format,
//! used by integration tests and the self-checking `figserve` figure to
//! reconcile scraped values against client-side tallies. Hand-rolled on
//! `std` because the build environment has no crates.io access.

use std::collections::HashMap;

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Full series name as written, including `_bucket`/`_sum`/`_count`
    /// suffixes for histogram lines.
    pub name: String,
    /// Label pairs, unescaped, in the order written.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf`-aware).
    pub value: f64,
}

impl ParsedSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed scrape: samples plus the `# TYPE` declarations seen.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    /// Every sample line, in document order.
    pub samples: Vec<ParsedSample>,
    /// Family name → declared type (`counter` / `gauge` / `histogram`).
    pub types: HashMap<String, String>,
}

impl Scrape {
    /// The first sample whose name matches and whose labels include all of
    /// `label_filter`.
    pub fn get(&self, name: &str, label_filter: &[(&str, &str)]) -> Option<&ParsedSample> {
        self.samples
            .iter()
            .find(|s| s.name == name && label_filter.iter().all(|(k, v)| s.label(k) == Some(v)))
    }

    /// The value of [`Scrape::get`], if found.
    pub fn value(&self, name: &str, label_filter: &[(&str, &str)]) -> Option<f64> {
        self.get(name, label_filter).map(|s| s.value)
    }

    /// Sum of every sample named `name` (across labels). Histogram suffix
    /// names (`..._count`) are distinct names here, so this never mixes
    /// buckets into counters.
    pub fn sum(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// The distinct sample names present.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        names
    }
}

/// Parse a text-format scrape body. Returns an error describing the first
/// malformed line, if any.
pub fn parse(body: &str) -> Result<Scrape, String> {
    let mut scrape = Scrape::default();
    for (ln, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("line {}: TYPE without name", ln + 1))?;
            let kind = it
                .next()
                .ok_or_else(|| format!("line {}: TYPE without kind", ln + 1))?;
            scrape.types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        scrape
            .samples
            .push(parse_sample(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    Ok(scrape)
}

fn parse_sample(line: &str) -> Result<ParsedSample, String> {
    if let Some(open) = line.find('{') {
        let close = line
            .rfind('}')
            .ok_or_else(|| "unclosed label block".to_string())?;
        Ok(ParsedSample {
            name: name_part_checked(&line[..open])?,
            labels: parse_labels(&line[open + 1..close])?,
            value: parse_value(line[close + 1..].trim())?,
        })
    } else {
        let mut it = line.split_whitespace();
        let name = it.next().ok_or_else(|| "empty line".to_string())?;
        let value = it.next().ok_or_else(|| "missing value".to_string())?;
        Ok(ParsedSample {
            name: name_part_checked(name)?,
            labels: Vec::new(),
            value: parse_value(value)?,
        })
    }
}

fn name_part_checked(name: &str) -> Result<String, String> {
    let name = name.trim();
    if name.is_empty() {
        return Err("empty metric name".into());
    }
    let ok = name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    if !ok {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(name.to_string())
}

fn parse_value(src: &str) -> Result<f64, String> {
    match src {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => src
            .split_whitespace()
            .next()
            .unwrap_or("")
            .parse::<f64>()
            .map_err(|_| format!("bad value {src:?}")),
    }
}

fn parse_labels(src: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = src.chars().peekable();
    loop {
        // key
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if key.is_empty() {
            break;
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("label {key:?} missing =\""));
        }
        // quoted value with escapes
        let mut val = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => val.push('\\'),
                    Some('"') => val.push('"'),
                    Some('n') => val.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => val.push(c),
                None => return Err("unterminated label value".into()),
            }
        }
        labels.push((key.trim().to_string(), val));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected {c:?} after label value")),
        }
    }
    Ok(labels)
}

/// Validate a scrape body: every sample parses, every sample's family has a
/// preceding `# TYPE`, histogram families carry `+Inf` buckets with
/// monotonically non-decreasing cumulative counts, and `_count` matches the
/// `+Inf` bucket.
pub fn validate(body: &str) -> Result<(), String> {
    let scrape = parse(body)?;
    for s in &scrape.samples {
        let family = histogram_family(&scrape, &s.name).unwrap_or(&s.name);
        if !scrape.types.contains_key(family) {
            return Err(format!("sample {} has no # TYPE declaration", s.name));
        }
    }
    // Histogram checks per (family, non-le labels).
    for (family, kind) in &scrape.types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{family}_bucket");
        // One entry per distinct non-`le` label set: (labels, cumulative
        // bucket values in document order, the `+Inf` bucket's value).
        type BucketGroup = (Vec<(String, String)>, Vec<f64>, Option<f64>);
        let mut groups: Vec<BucketGroup> = Vec::new();
        for s in scrape.samples.iter().filter(|s| s.name == bucket_name) {
            let base: Vec<(String, String)> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            let is_inf = s.label("le") == Some("+Inf");
            match groups.iter_mut().find(|(b, _, _)| *b == base) {
                Some((_, counts, inf)) => {
                    counts.push(s.value);
                    if is_inf {
                        *inf = Some(s.value);
                    }
                }
                None => groups.push((base, vec![s.value], is_inf.then_some(s.value))),
            }
        }
        for (base, counts, inf) in &groups {
            let inf = inf.ok_or_else(|| format!("{bucket_name}{base:?} lacks le=\"+Inf\""))?;
            if counts.windows(2).any(|w| w[1] < w[0]) {
                return Err(format!("{bucket_name}{base:?} buckets not cumulative"));
            }
            let filter: Vec<(&str, &str)> =
                base.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            let count = scrape
                .value(&format!("{family}_count"), &filter)
                .ok_or_else(|| format!("{family}_count missing for {base:?}"))?;
            if (count - inf).abs() > f64::EPSILON {
                return Err(format!(
                    "{family}_count ({count}) != +Inf bucket ({inf}) for {base:?}"
                ));
            }
        }
    }
    Ok(())
}

/// If `name` looks like a histogram suffix series of a declared histogram
/// family, return that family name.
fn histogram_family<'s>(scrape: &'s Scrape, name: &str) -> Option<&'s str> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if let Some((family, kind)) = scrape.types.get_key_value(stem) {
                if kind == "histogram" {
                    return Some(family);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_labeled_samples() {
        let body = "# HELP a_total help text\n# TYPE a_total counter\na_total 5\n\
                    # TYPE b_total counter\nb_total{path=\"run\",t=\"x y\"} 2.5\n";
        let s = parse(body).unwrap();
        assert_eq!(s.value("a_total", &[]), Some(5.0));
        assert_eq!(s.value("b_total", &[("path", "run")]), Some(2.5));
        assert_eq!(s.get("b_total", &[]).unwrap().label("t"), Some("x y"));
        assert_eq!(s.types.get("a_total").map(String::as_str), Some("counter"));
        validate(body).unwrap();
    }

    #[test]
    fn parses_escaped_labels_and_inf() {
        let body = "# TYPE h histogram\nh_bucket{le=\"0.001\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
                    h_sum 0.5\nh_count 2\n# TYPE c counter\nc{v=\"a\\\"b\\\\c\"} 1\n";
        let s = parse(body).unwrap();
        assert_eq!(s.value("h_bucket", &[("le", "+Inf")]), Some(2.0));
        assert_eq!(s.get("c", &[]).unwrap().label("v"), Some("a\"b\\c"));
        validate(body).unwrap();
    }

    #[test]
    fn rejects_missing_type_and_broken_buckets() {
        assert!(validate("a_total 1\n").is_err(), "no TYPE");
        let non_cumulative = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\n\
                              h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate(non_cumulative).is_err(), "non-cumulative buckets");
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate(no_inf).is_err(), "missing +Inf");
        let bad_count = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n";
        assert!(validate(bad_count).is_err(), "count mismatch");
    }

    #[test]
    fn sum_across_labels() {
        let body = "# TYPE q counter\nq{p=\"a\"} 1\nq{p=\"b\"} 2\n";
        assert_eq!(parse(body).unwrap().sum("q"), 3.0);
    }
}
