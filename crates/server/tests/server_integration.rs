//! End-to-end test of the `relgo-server` binary: spin it on an ephemeral
//! port, hit every endpoint from concurrent clients, check row identity
//! against an in-process oracle session built from the same `(sf, seed)`,
//! and reconcile the `/metrics` scrape against client-side tallies.
//!
//! A second, in-process test drives [`relgo_server::Server`] directly with
//! a deliberately tight config to pin down admission control, row-budget
//! rejection, and drain accounting deterministically.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use relgo::prelude::*;
use relgo::workloads::templates::snb_templates;
use relgo_metrics::text;
use relgo_server::{wire, Server, ServerConfig};

const SF: f64 = 0.03;
const SEED: u64 = 7;

/// One blocking HTTP exchange: request out, `(status, body)` back.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has header/body split");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

/// Decode a 200 query response: meta line + wire-encoded rows.
fn decode_query_body(body: &str) -> (String, Vec<Vec<Value>>) {
    let mut lines = body.lines();
    let meta = lines.next().expect("meta line").to_string();
    assert!(meta.starts_with("ok rows="), "unexpected meta: {meta}");
    let mut rows: Vec<Vec<Value>> = lines
        .map(|l| wire::decode_row(l).expect("row decodes"))
        .collect();
    rows.sort();
    (meta, rows)
}

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn() -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_relgo-server"))
            .args([
                "--sf",
                &SF.to_string(),
                "--seed",
                &SEED.to_string(),
                "--addr",
                "127.0.0.1:0",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn relgo-server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("startup line");
        let addr = line
            .trim()
            .strip_prefix("listening on http://")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .to_string();
        ServerProc { child, addr }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        // Normal exits go through POST /shutdown; this is the crashed-test
        // safety net so a failing assert never leaks a child process.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn server_round_trips_against_in_process_oracle() {
    let server = ServerProc::spawn();
    let addr = server.addr.clone();
    let (oracle, schema) = Session::snb(SF, SEED).expect("oracle session");
    let templates = snb_templates(&schema);

    let queries_sent = AtomicU64::new(0);
    let rows_received = AtomicU64::new(0);

    // --- concurrent templated queries, row-identical to the oracle ------
    std::thread::scope(|scope| {
        for worker in 0..3u64 {
            let (addr, oracle, templates) = (&addr, &oracle, &templates);
            let (queries_sent, rows_received) = (&queries_sent, &rows_received);
            scope.spawn(move || {
                for (t, template) in templates.iter().enumerate() {
                    for draw in [worker, worker + 10] {
                        let mode = if (t as u64 + draw).is_multiple_of(2) {
                            OptimizerMode::RelGo
                        } else {
                            OptimizerMode::DuckDbLike
                        };
                        let path = format!(
                            "/query?template={}&draw={draw}&mode={}&tenant=w{worker}",
                            template.name(),
                            mode.name()
                        );
                        let (status, body) = http(addr, "POST", &path, "");
                        queries_sent.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(status, 200, "query failed: {body}");
                        let (_, rows) = decode_query_body(&body);
                        rows_received.fetch_add(rows.len() as u64, Ordering::Relaxed);
                        let query = template.instantiate(draw).unwrap();
                        let expected = oracle.run(&query, mode).unwrap().table.sorted_rows();
                        assert_eq!(rows, expected, "{} draw {draw}", template.name());
                    }
                }
            });
        }
    });

    // --- prepared statements over the wire ------------------------------
    let (status, body) = http(
        &addr,
        "POST",
        &format!("/prepare?template={}", templates[0].name()),
        "",
    );
    assert_eq!(status, 200, "prepare failed: {body}");
    let stmt = body
        .trim()
        .strip_prefix("ok stmt=")
        .expect("prepare returns a statement id")
        .to_string();
    let mut executes_sent = 0u64;
    for draw in [3u64, 4, 5] {
        let (status, body) = http(
            &addr,
            "POST",
            &format!("/execute?stmt={stmt}&draw={draw}"),
            "",
        );
        executes_sent += 1;
        assert_eq!(status, 200, "execute failed: {body}");
        let (_, rows) = decode_query_body(&body);
        rows_received.fetch_add(rows.len() as u64, Ordering::Relaxed);
        let query = templates[0].instantiate(draw).unwrap();
        let expected = oracle
            .run(&query, OptimizerMode::RelGo)
            .unwrap()
            .table
            .sorted_rows();
        assert_eq!(rows, expected, "prepared draw {draw}");
    }

    // Release the handle; executing it afterwards is a clean 400 (the
    // failed execute still counts toward the endpoint's request series).
    let (status, body) = http(&addr, "POST", &format!("/unprepare?stmt={stmt}"), "");
    assert_eq!(status, 200, "unprepare failed: {body}");
    assert_eq!(body.trim(), format!("ok unprepared={stmt}"));
    let (status, _) = http(&addr, "POST", &format!("/execute?stmt={stmt}&draw=3"), "");
    assert_eq!(status, 400, "released handle must be unknown");

    // --- error paths count toward their endpoint's series ---------------
    let (status, _) = http(&addr, "POST", "/query?template=NoSuchTemplate&draw=0", "");
    assert_eq!(status, 400);
    queries_sent.fetch_add(1, Ordering::Relaxed);
    let (status, _) = http(
        &addr,
        "POST",
        &format!(
            "/query?template={}&draw=0&mode=NoSuchMode",
            templates[0].name()
        ),
        "",
    );
    assert_eq!(status, 400);
    queries_sent.fetch_add(1, Ordering::Relaxed);
    let (status, _) = http(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.starts_with("ok epoch="), "healthz body: {body}");

    // --- ingest over the wire, mirrored on the oracle --------------------
    // Two commits: a delete target must exist in the published base, so
    // the inserts land first and the delete rides the next epoch.
    let ingest_body = "Person|i:800001|s:WireBob|d:17000\nPerson|i:800002|s:WïreÉve🦀|d:17001\n";
    let (status, body) = http(&addr, "POST", "/ingest", ingest_body);
    assert_eq!(status, 200, "ingest failed: {body}");
    assert!(
        body.contains("inserted=2") && body.contains("deleted=0"),
        "{body}"
    );
    let (status, body) = http(&addr, "POST", "/ingest", "delete|Person|800002\n");
    assert_eq!(status, 200, "delete ingest failed: {body}");
    assert!(
        body.contains("inserted=0") && body.contains("deleted=1"),
        "{body}"
    );
    let mut batch = oracle.begin_ingest();
    batch
        .insert_row(
            "Person",
            vec![
                Value::Int(800_001),
                Value::str("WireBob"),
                Value::Date(17_000),
            ],
        )
        .unwrap();
    batch
        .insert_row(
            "Person",
            vec![
                Value::Int(800_002),
                Value::str("WïreÉve🦀"),
                Value::Date(17_001),
            ],
        )
        .unwrap();
    batch.commit().unwrap();
    let mut batch = oracle.begin_ingest();
    batch.delete_row("Person", 800_002).unwrap();
    batch.commit().unwrap();

    // Post-ingest row identity: both sides serve the new epoch.
    let query = templates[0].instantiate(1).unwrap();
    let (status, body) = http(
        &addr,
        "POST",
        &format!("/query?template={}&draw=1", templates[0].name()),
        "",
    );
    queries_sent.fetch_add(1, Ordering::Relaxed);
    assert_eq!(status, 200);
    let (meta, rows) = decode_query_body(&body);
    rows_received.fetch_add(rows.len() as u64, Ordering::Relaxed);
    assert!(
        meta.contains(&format!("epoch={}", oracle.epoch())),
        "{meta}"
    );
    let expected = oracle
        .run(&query, OptimizerMode::RelGo)
        .unwrap()
        .table
        .sorted_rows();
    assert_eq!(rows, expected);

    // A malformed ingest line is rejected without committing anything.
    let epoch_before = oracle.epoch();
    let (status, _) = http(&addr, "POST", "/ingest", "Person|i:1|missing_tag\n");
    assert_eq!(status, 400);
    let (_, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!(body.trim(), format!("ok epoch={epoch_before}"));

    // --- /metrics reconciles with the client-side tallies ----------------
    let (status, scrape_body) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    text::validate(&scrape_body).expect("scrape passes format validation");
    let scrape = text::parse(&scrape_body).expect("scrape parses");
    assert!(
        scrape.names().len() >= 12,
        "expected >= 12 series names, got {:?}",
        scrape.names()
    );
    let queries = queries_sent.load(Ordering::Relaxed);
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "query")]),
        Some(queries as f64)
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "execute")]),
        Some((executes_sent + 1) as f64), // + the 400 on the released handle
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "prepare")]),
        Some(1.0)
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "unprepare")]),
        Some(1.0)
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "ingest")]),
        Some(3.0)
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "other")]),
        Some(1.0)
    );
    assert_eq!(
        scrape.value("relgo_http_rows_served_total", &[]),
        Some(rows_received.load(Ordering::Relaxed) as f64)
    );
    assert_eq!(scrape.value("relgo_ingest_commits_total", &[]), Some(2.0));
    // Engine-side per-query accounting covers at least the successful
    // HTTP-served queries (cached path) and prepared executes.
    let cached = scrape
        .value("relgo_queries_total", &[("path", "cached")])
        .unwrap_or(0.0);
    let prepared = scrape
        .value("relgo_queries_total", &[("path", "prepared")])
        .unwrap_or(0.0);
    assert!(cached >= (queries - 2) as f64, "cached={cached}");
    assert_eq!(prepared, executes_sent as f64);

    // A second scrape sees the first one on the metrics endpoint's series.
    let (_, scrape2) = http(&addr, "GET", "/metrics", "");
    let scrape2 = text::parse(&scrape2).expect("second scrape parses");
    assert_eq!(
        scrape2.value("relgo_http_requests_total", &[("endpoint", "metrics")]),
        Some(1.0)
    );

    // --- graceful shutdown ------------------------------------------------
    let (status, body) = http(&addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(body.trim(), "ok draining");
    let mut server = server;
    let exit = server.child.wait().expect("server exits");
    assert!(exit.success(), "server exit status: {exit:?}");
}

/// Durable server lifecycle: `/healthz` reports WAL growth, `POST
/// /checkpoint` snapshots + truncates the log, `/metrics` exposes the
/// checkpoint gauges, and graceful drain leaves a checkpoint behind so the
/// next open replays nothing.
#[test]
fn durable_server_checkpoints_and_drains_with_bounded_recovery() {
    use relgo::datagen::{generate_snb, SnbParams};
    use relgo::CheckpointStore;

    let params = SnbParams { sf: 0.01, seed: 11 };
    let wal_path =
        std::env::temp_dir().join(format!("relgo_server_ckpt_{}.wal", std::process::id()));
    std::fs::remove_file(&wal_path).ok();
    let cleanup = || {
        std::fs::remove_file(&wal_path).ok();
        for (_, p) in CheckpointStore::for_wal(&wal_path)
            .list()
            .unwrap_or_default()
        {
            std::fs::remove_file(p).ok();
        }
    };
    cleanup();

    let (db, mapping) = generate_snb(&params);
    let (session, rec) = Session::open_durable(
        db,
        mapping,
        SessionOptions::default(),
        &wal_path,
        WalOptions::default(),
    )
    .expect("durable session");
    assert_eq!(rec.records, 0);
    let schema = SnbSchema::resolve(session.view().schema()).expect("schema");
    let templates = snb_templates(&schema);
    let bound = Server::new(&session, &templates, ServerConfig::default())
        .bind()
        .expect("bind");
    let addr = bound.local_addr().to_string();

    let (stats, client) = std::thread::scope(|scope| {
        let server = scope.spawn(move || bound.run().expect("server run"));
        let client = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Two commits grow the log; healthz reports the growth.
            for key in [900_001i64, 900_002] {
                let (status, body) = http(
                    &addr,
                    "POST",
                    "/ingest",
                    &format!("Person|i:{key}|s:Ckpt{key}|d:17000\n"),
                );
                assert_eq!(status, 200, "ingest failed: {body}");
            }
            let (status, body) = http(&addr, "GET", "/healthz", "");
            assert_eq!(status, 200);
            assert!(body.starts_with("ok epoch=2 "), "healthz body: {body}");
            let wal_bytes: u64 = body
                .trim()
                .split_once("wal_bytes_since_checkpoint=")
                .expect("durable healthz reports WAL bytes")
                .1
                .parse()
                .expect("byte count parses");
            assert!(wal_bytes > 0, "two records on disk: {body}");

            // Checkpoint over the wire: log truncated, gauges move.
            let (status, body) = http(&addr, "POST", "/checkpoint", "");
            assert_eq!(status, 200, "checkpoint failed: {body}");
            assert!(body.starts_with("ok checkpoint epoch=2 "), "{body}");
            assert!(body.contains("wal_records_dropped=2"), "{body}");
            let (_, body) = http(&addr, "GET", "/healthz", "");
            assert_eq!(body.trim(), "ok epoch=2 wal_bytes_since_checkpoint=0");
            let (_, scrape_body) = http(&addr, "GET", "/metrics", "");
            let scrape = text::parse(&scrape_body).expect("scrape parses");
            assert_eq!(scrape.value("relgo_checkpoints_total", &[]), Some(1.0));
            assert_eq!(scrape.value("relgo_checkpoint_epoch", &[]), Some(2.0));
            assert_eq!(
                scrape.value("relgo_wal_bytes_since_checkpoint", &[]),
                Some(0.0)
            );

            // One more commit after the checkpoint, left for drain to cover.
            let (status, body) = http(
                &addr,
                "POST",
                "/ingest",
                "Person|i:900003|s:AfterCkpt|d:17000\n",
            );
            assert_eq!(status, 200, "ingest failed: {body}");
        }));
        let (status, _) = http(&addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        let stats = server.join().expect("server thread");
        (stats, client)
    });
    if let Err(p) = client {
        cleanup();
        std::panic::resume_unwind(p);
    }
    assert_eq!(stats.failed, 0, "no failed requests");

    // Drain checkpointed the final epoch: recovery replays nothing.
    assert_eq!(session.last_checkpoint_epoch(), 3);
    assert_eq!(session.wal_bytes_since_checkpoint(), Some(0));
    let (db, mapping) = generate_snb(&params);
    let (back, rec) = Session::recover(db, mapping, &wal_path).expect("recover");
    assert!(rec.checkpoint_loaded);
    assert_eq!(rec.checkpoint_epoch, 3);
    assert_eq!(rec.records, 0, "drain checkpoint covers every commit");
    assert_eq!(back.epoch(), session.epoch());
    assert_eq!(
        session.db().table("Person").unwrap().sorted_rows(),
        back.db().table("Person").unwrap().sorted_rows(),
        "Person survives server drain + recovery bit-identically"
    );
    cleanup();
}

#[test]
fn in_process_admission_budget_and_drain_accounting() {
    let (session, schema) = Session::snb(0.01, 11).expect("session");
    let templates = snb_templates(&schema);
    // Find an instance that returns rows, so the row budget below is
    // guaranteed to trip (a 0-row query charges nothing). Sizing the
    // per-tenant budget to 2r+1 makes the outcome deterministic: a tenant
    // replaying this instance gets exactly two responses (charges r, 2r)
    // and trips on the third (3r > 2r+1), while a fresh tenant's single
    // query (r <= 2r+1) always fits.
    let (budget_template, budget_draw, budget_rows) = 'found: {
        for (i, t) in templates.iter().enumerate() {
            for d in 0..20u64 {
                let q = t.instantiate(d).expect("instantiate");
                let rows = session
                    .run(&q, OptimizerMode::RelGo)
                    .expect("probe run")
                    .table
                    .num_rows();
                if rows > 0 {
                    break 'found (i, d, rows);
                }
            }
        }
        panic!("no template instance returns rows at sf 0.01");
    };
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_inflight_per_tenant: 1,
        tenant_row_budget: 2 * budget_rows + 1,
        max_body_bytes: 64,
        ..ServerConfig::default()
    };
    let bound = Server::new(&session, &templates, config)
        .bind()
        .expect("bind");
    let addr = bound.local_addr().to_string();

    let (stats, client) = std::thread::scope(|scope| {
        let server = scope.spawn(move || bound.run().expect("server run"));

        // A panicking assert in the client body would deadlock the scope
        // (it joins the server thread, which only exits on /shutdown), so
        // run the client under catch_unwind and always send the shutdown.
        let client = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ok = 0u64;
            let mut rejected = 0u64;
            let mut failed = 0u64;
            // The 3-row budget for tenant "skint" must trip within a
            // bounded number of row-returning queries; other tenants stay
            // unaffected.
            for _attempt in 0..10u64 {
                let (status, _) = http(
                    &addr,
                    "POST",
                    &format!(
                        "/query?template={}&draw={budget_draw}&tenant=skint",
                        templates[budget_template].name()
                    ),
                    "",
                );
                match status {
                    200 => ok += 1,
                    429 => {
                        rejected += 1;
                        break;
                    }
                    _ => failed += 1,
                }
            }
            assert_eq!(ok, 2, "budget math: two charges fit, the third trips");
            assert_eq!(rejected, 1, "row budget never tripped (ok={ok})");
            assert_eq!(failed, 0);
            let (status, _) = http(
                &addr,
                "POST",
                &format!(
                    "/query?template={}&draw={budget_draw}&tenant=solvent",
                    templates[budget_template].name()
                ),
                "",
            );
            assert_eq!(status, 200, "other tenants unaffected by skint's budget");
            // A body bigger than the 64-byte cap is rejected up front
            // with 413 — no multi-GB allocation from a hostile header.
            let big_body = "x".repeat(65);
            let (status, body) = http(&addr, "POST", "/ingest", &big_body);
            assert_eq!(status, 413, "oversized body: {body}");
            // Checkpointing an in-memory session is a clean client error.
            let (status, body) = http(&addr, "POST", "/checkpoint", "");
            assert_eq!(status, 400, "non-durable checkpoint: {body}");
            assert!(body.contains("not durable"), "{body}");
            (ok + 1, rejected)
        }));

        let (status, body) = http(&addr, "POST", "/shutdown", "");
        assert_eq!(status, 200, "shutdown: {body}");
        let stats = server.join().expect("server thread");
        (stats, client)
    });

    let (ok, rejected) = match client {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    };
    // Drain accounting: every accepted connection produced exactly one
    // classified response, and the client saw all of them.
    assert_eq!(
        stats.connections,
        stats.ok_responses + stats.rejected + stats.failed
    );
    assert_eq!(stats.ok_responses, ok + 1); // + the shutdown ack itself
    assert_eq!(stats.rejected, rejected);
    // The 413 oversized-body probe and the 400 non-durable checkpoint.
    assert_eq!(stats.failed, 2);
}
