//! End-to-end test of the `relgo-server` binary: spin it on an ephemeral
//! port, hit every endpoint from concurrent clients, check row identity
//! against an in-process oracle session built from the same `(sf, seed)`,
//! and reconcile the `/metrics` scrape against client-side tallies.
//!
//! A second, in-process test drives [`relgo_server::Server`] directly with
//! a deliberately tight config to pin down admission control, row-budget
//! rejection, and drain accounting deterministically.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use relgo::prelude::*;
use relgo::workloads::templates::snb_templates;
use relgo_metrics::text;
use relgo_server::{wire, Server, ServerConfig};

const SF: f64 = 0.03;
const SEED: u64 = 7;

/// One blocking HTTP exchange: request out, `(status, body)` back.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has header/body split");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

/// Decode a 200 query response: meta line + wire-encoded rows.
fn decode_query_body(body: &str) -> (String, Vec<Vec<Value>>) {
    let mut lines = body.lines();
    let meta = lines.next().expect("meta line").to_string();
    assert!(meta.starts_with("ok rows="), "unexpected meta: {meta}");
    let mut rows: Vec<Vec<Value>> = lines
        .map(|l| wire::decode_row(l).expect("row decodes"))
        .collect();
    rows.sort();
    (meta, rows)
}

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn() -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_relgo-server"))
            .args([
                "--sf",
                &SF.to_string(),
                "--seed",
                &SEED.to_string(),
                "--addr",
                "127.0.0.1:0",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn relgo-server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("startup line");
        let addr = line
            .trim()
            .strip_prefix("listening on http://")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .to_string();
        ServerProc { child, addr }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        // Normal exits go through POST /shutdown; this is the crashed-test
        // safety net so a failing assert never leaks a child process.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn server_round_trips_against_in_process_oracle() {
    let server = ServerProc::spawn();
    let addr = server.addr.clone();
    let (oracle, schema) = Session::snb(SF, SEED).expect("oracle session");
    let templates = snb_templates(&schema);

    let queries_sent = AtomicU64::new(0);
    let rows_received = AtomicU64::new(0);

    // --- concurrent templated queries, row-identical to the oracle ------
    std::thread::scope(|scope| {
        for worker in 0..3u64 {
            let (addr, oracle, templates) = (&addr, &oracle, &templates);
            let (queries_sent, rows_received) = (&queries_sent, &rows_received);
            scope.spawn(move || {
                for (t, template) in templates.iter().enumerate() {
                    for draw in [worker, worker + 10] {
                        let mode = if (t as u64 + draw).is_multiple_of(2) {
                            OptimizerMode::RelGo
                        } else {
                            OptimizerMode::DuckDbLike
                        };
                        let path = format!(
                            "/query?template={}&draw={draw}&mode={}&tenant=w{worker}",
                            template.name(),
                            mode.name()
                        );
                        let (status, body) = http(addr, "POST", &path, "");
                        queries_sent.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(status, 200, "query failed: {body}");
                        let (_, rows) = decode_query_body(&body);
                        rows_received.fetch_add(rows.len() as u64, Ordering::Relaxed);
                        let query = template.instantiate(draw).unwrap();
                        let expected = oracle.run(&query, mode).unwrap().table.sorted_rows();
                        assert_eq!(rows, expected, "{} draw {draw}", template.name());
                    }
                }
            });
        }
    });

    // --- prepared statements over the wire ------------------------------
    let (status, body) = http(
        &addr,
        "POST",
        &format!("/prepare?template={}", templates[0].name()),
        "",
    );
    assert_eq!(status, 200, "prepare failed: {body}");
    let stmt = body
        .trim()
        .strip_prefix("ok stmt=")
        .expect("prepare returns a statement id")
        .to_string();
    let mut executes_sent = 0u64;
    for draw in [3u64, 4, 5] {
        let (status, body) = http(
            &addr,
            "POST",
            &format!("/execute?stmt={stmt}&draw={draw}"),
            "",
        );
        executes_sent += 1;
        assert_eq!(status, 200, "execute failed: {body}");
        let (_, rows) = decode_query_body(&body);
        rows_received.fetch_add(rows.len() as u64, Ordering::Relaxed);
        let query = templates[0].instantiate(draw).unwrap();
        let expected = oracle
            .run(&query, OptimizerMode::RelGo)
            .unwrap()
            .table
            .sorted_rows();
        assert_eq!(rows, expected, "prepared draw {draw}");
    }

    // Release the handle; executing it afterwards is a clean 400 (the
    // failed execute still counts toward the endpoint's request series).
    let (status, body) = http(&addr, "POST", &format!("/unprepare?stmt={stmt}"), "");
    assert_eq!(status, 200, "unprepare failed: {body}");
    assert_eq!(body.trim(), format!("ok unprepared={stmt}"));
    let (status, _) = http(&addr, "POST", &format!("/execute?stmt={stmt}&draw=3"), "");
    assert_eq!(status, 400, "released handle must be unknown");

    // --- error paths count toward their endpoint's series ---------------
    let (status, _) = http(&addr, "POST", "/query?template=NoSuchTemplate&draw=0", "");
    assert_eq!(status, 400);
    queries_sent.fetch_add(1, Ordering::Relaxed);
    let (status, _) = http(
        &addr,
        "POST",
        &format!(
            "/query?template={}&draw=0&mode=NoSuchMode",
            templates[0].name()
        ),
        "",
    );
    assert_eq!(status, 400);
    queries_sent.fetch_add(1, Ordering::Relaxed);
    let (status, _) = http(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.starts_with("ok epoch="), "healthz body: {body}");

    // --- ingest over the wire, mirrored on the oracle --------------------
    // Two commits: a delete target must exist in the published base, so
    // the inserts land first and the delete rides the next epoch.
    let ingest_body = "Person|i:800001|s:WireBob|d:17000\nPerson|i:800002|s:WïreÉve🦀|d:17001\n";
    let (status, body) = http(&addr, "POST", "/ingest", ingest_body);
    assert_eq!(status, 200, "ingest failed: {body}");
    assert!(
        body.contains("inserted=2") && body.contains("deleted=0"),
        "{body}"
    );
    let (status, body) = http(&addr, "POST", "/ingest", "delete|Person|800002\n");
    assert_eq!(status, 200, "delete ingest failed: {body}");
    assert!(
        body.contains("inserted=0") && body.contains("deleted=1"),
        "{body}"
    );
    let mut batch = oracle.begin_ingest();
    batch
        .insert_row(
            "Person",
            vec![
                Value::Int(800_001),
                Value::str("WireBob"),
                Value::Date(17_000),
            ],
        )
        .unwrap();
    batch
        .insert_row(
            "Person",
            vec![
                Value::Int(800_002),
                Value::str("WïreÉve🦀"),
                Value::Date(17_001),
            ],
        )
        .unwrap();
    batch.commit().unwrap();
    let mut batch = oracle.begin_ingest();
    batch.delete_row("Person", 800_002).unwrap();
    batch.commit().unwrap();

    // Post-ingest row identity: both sides serve the new epoch.
    let query = templates[0].instantiate(1).unwrap();
    let (status, body) = http(
        &addr,
        "POST",
        &format!("/query?template={}&draw=1", templates[0].name()),
        "",
    );
    queries_sent.fetch_add(1, Ordering::Relaxed);
    assert_eq!(status, 200);
    let (meta, rows) = decode_query_body(&body);
    rows_received.fetch_add(rows.len() as u64, Ordering::Relaxed);
    assert!(
        meta.contains(&format!("epoch={}", oracle.epoch())),
        "{meta}"
    );
    let expected = oracle
        .run(&query, OptimizerMode::RelGo)
        .unwrap()
        .table
        .sorted_rows();
    assert_eq!(rows, expected);

    // A malformed ingest line is rejected without committing anything.
    let epoch_before = oracle.epoch();
    let (status, _) = http(&addr, "POST", "/ingest", "Person|i:1|missing_tag\n");
    assert_eq!(status, 400);
    let (_, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!(body.trim(), format!("ok epoch={epoch_before}"));

    // --- /metrics reconciles with the client-side tallies ----------------
    let (status, scrape_body) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    text::validate(&scrape_body).expect("scrape passes format validation");
    let scrape = text::parse(&scrape_body).expect("scrape parses");
    assert!(
        scrape.names().len() >= 12,
        "expected >= 12 series names, got {:?}",
        scrape.names()
    );
    let queries = queries_sent.load(Ordering::Relaxed);
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "query")]),
        Some(queries as f64)
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "execute")]),
        Some((executes_sent + 1) as f64), // + the 400 on the released handle
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "prepare")]),
        Some(1.0)
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "unprepare")]),
        Some(1.0)
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "ingest")]),
        Some(3.0)
    );
    assert_eq!(
        scrape.value("relgo_http_requests_total", &[("endpoint", "other")]),
        Some(1.0)
    );
    assert_eq!(
        scrape.value("relgo_http_rows_served_total", &[]),
        Some(rows_received.load(Ordering::Relaxed) as f64)
    );
    assert_eq!(scrape.value("relgo_ingest_commits_total", &[]), Some(2.0));
    // Engine-side per-query accounting covers at least the successful
    // HTTP-served queries (cached path) and prepared executes.
    let cached = scrape
        .value("relgo_queries_total", &[("path", "cached")])
        .unwrap_or(0.0);
    let prepared = scrape
        .value("relgo_queries_total", &[("path", "prepared")])
        .unwrap_or(0.0);
    assert!(cached >= (queries - 2) as f64, "cached={cached}");
    assert_eq!(prepared, executes_sent as f64);

    // A second scrape sees the first one on the metrics endpoint's series.
    let (_, scrape2) = http(&addr, "GET", "/metrics", "");
    let scrape2 = text::parse(&scrape2).expect("second scrape parses");
    assert_eq!(
        scrape2.value("relgo_http_requests_total", &[("endpoint", "metrics")]),
        Some(1.0)
    );

    // --- graceful shutdown ------------------------------------------------
    let (status, body) = http(&addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(body.trim(), "ok draining");
    let mut server = server;
    let exit = server.child.wait().expect("server exits");
    assert!(exit.success(), "server exit status: {exit:?}");
}

/// Durable server lifecycle: `/healthz` reports WAL growth, `POST
/// /checkpoint` snapshots + truncates the log, `/metrics` exposes the
/// checkpoint gauges, and graceful drain leaves a checkpoint behind so the
/// next open replays nothing.
#[test]
fn durable_server_checkpoints_and_drains_with_bounded_recovery() {
    use relgo::datagen::{generate_snb, SnbParams};
    use relgo::CheckpointStore;

    let params = SnbParams { sf: 0.01, seed: 11 };
    let wal_path =
        std::env::temp_dir().join(format!("relgo_server_ckpt_{}.wal", std::process::id()));
    std::fs::remove_file(&wal_path).ok();
    let cleanup = || {
        std::fs::remove_file(&wal_path).ok();
        for (_, p) in CheckpointStore::for_wal(&wal_path)
            .list()
            .unwrap_or_default()
        {
            std::fs::remove_file(p).ok();
        }
    };
    cleanup();

    let (db, mapping) = generate_snb(&params);
    let (session, rec) = Session::open_durable(
        db,
        mapping,
        SessionOptions::default(),
        &wal_path,
        WalOptions::default(),
    )
    .expect("durable session");
    assert_eq!(rec.records, 0);
    let schema = SnbSchema::resolve(session.view().schema()).expect("schema");
    let templates = snb_templates(&schema);
    let bound = Server::new(&session, &templates, ServerConfig::default())
        .bind()
        .expect("bind");
    let addr = bound.local_addr().to_string();

    let (stats, client) = std::thread::scope(|scope| {
        let server = scope.spawn(move || bound.run().expect("server run"));
        let client = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Two commits grow the log; healthz reports the growth.
            for key in [900_001i64, 900_002] {
                let (status, body) = http(
                    &addr,
                    "POST",
                    "/ingest",
                    &format!("Person|i:{key}|s:Ckpt{key}|d:17000\n"),
                );
                assert_eq!(status, 200, "ingest failed: {body}");
            }
            let (status, body) = http(&addr, "GET", "/healthz", "");
            assert_eq!(status, 200);
            assert!(body.starts_with("ok epoch=2 "), "healthz body: {body}");
            let wal_bytes: u64 = body
                .trim()
                .split_once("wal_bytes_since_checkpoint=")
                .expect("durable healthz reports WAL bytes")
                .1
                .parse()
                .expect("byte count parses");
            assert!(wal_bytes > 0, "two records on disk: {body}");

            // Checkpoint over the wire: log truncated, gauges move.
            let (status, body) = http(&addr, "POST", "/checkpoint", "");
            assert_eq!(status, 200, "checkpoint failed: {body}");
            assert!(body.starts_with("ok checkpoint epoch=2 "), "{body}");
            assert!(body.contains("wal_records_dropped=2"), "{body}");
            let (_, body) = http(&addr, "GET", "/healthz", "");
            assert_eq!(body.trim(), "ok epoch=2 wal_bytes_since_checkpoint=0");
            let (_, scrape_body) = http(&addr, "GET", "/metrics", "");
            let scrape = text::parse(&scrape_body).expect("scrape parses");
            assert_eq!(scrape.value("relgo_checkpoints_total", &[]), Some(1.0));
            assert_eq!(scrape.value("relgo_checkpoint_epoch", &[]), Some(2.0));
            assert_eq!(
                scrape.value("relgo_wal_bytes_since_checkpoint", &[]),
                Some(0.0)
            );

            // One more commit after the checkpoint, left for drain to cover.
            let (status, body) = http(
                &addr,
                "POST",
                "/ingest",
                "Person|i:900003|s:AfterCkpt|d:17000\n",
            );
            assert_eq!(status, 200, "ingest failed: {body}");
        }));
        let (status, _) = http(&addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        let stats = server.join().expect("server thread");
        (stats, client)
    });
    if let Err(p) = client {
        cleanup();
        std::panic::resume_unwind(p);
    }
    assert_eq!(stats.failed, 0, "no failed requests");

    // Drain checkpointed the final epoch: recovery replays nothing.
    assert_eq!(session.last_checkpoint_epoch(), 3);
    assert_eq!(session.wal_bytes_since_checkpoint(), Some(0));
    let (db, mapping) = generate_snb(&params);
    let (back, rec) = Session::recover(db, mapping, &wal_path).expect("recover");
    assert!(rec.checkpoint_loaded);
    assert_eq!(rec.checkpoint_epoch, 3);
    assert_eq!(rec.records, 0, "drain checkpoint covers every commit");
    assert_eq!(back.epoch(), session.epoch());
    assert_eq!(
        session.db().table("Person").unwrap().sorted_rows(),
        back.db().table("Person").unwrap().sorted_rows(),
        "Person survives server drain + recovery bit-identically"
    );
    cleanup();
}

#[test]
fn in_process_admission_budget_and_drain_accounting() {
    let (session, schema) = Session::snb(0.01, 11).expect("session");
    let templates = snb_templates(&schema);
    // Find an instance that returns rows, so the row budget below is
    // guaranteed to trip (a 0-row query charges nothing). Sizing the
    // per-tenant budget to 2r+1 makes the outcome deterministic: a tenant
    // replaying this instance gets exactly two responses (charges r, 2r)
    // and trips on the third (3r > 2r+1), while a fresh tenant's single
    // query (r <= 2r+1) always fits.
    let (budget_template, budget_draw, budget_rows) = 'found: {
        for (i, t) in templates.iter().enumerate() {
            for d in 0..20u64 {
                let q = t.instantiate(d).expect("instantiate");
                let rows = session
                    .run(&q, OptimizerMode::RelGo)
                    .expect("probe run")
                    .table
                    .num_rows();
                if rows > 0 {
                    break 'found (i, d, rows);
                }
            }
        }
        panic!("no template instance returns rows at sf 0.01");
    };
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_inflight_per_tenant: 1,
        tenant_row_budget: 2 * budget_rows + 1,
        max_body_bytes: 64,
        ..ServerConfig::default()
    };
    let bound = Server::new(&session, &templates, config)
        .bind()
        .expect("bind");
    let addr = bound.local_addr().to_string();

    let (stats, client) = std::thread::scope(|scope| {
        let server = scope.spawn(move || bound.run().expect("server run"));

        // A panicking assert in the client body would deadlock the scope
        // (it joins the server thread, which only exits on /shutdown), so
        // run the client under catch_unwind and always send the shutdown.
        let client = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ok = 0u64;
            let mut rejected = 0u64;
            let mut failed = 0u64;
            // The 3-row budget for tenant "skint" must trip within a
            // bounded number of row-returning queries; other tenants stay
            // unaffected.
            for _attempt in 0..10u64 {
                let (status, _) = http(
                    &addr,
                    "POST",
                    &format!(
                        "/query?template={}&draw={budget_draw}&tenant=skint",
                        templates[budget_template].name()
                    ),
                    "",
                );
                match status {
                    200 => ok += 1,
                    429 => {
                        rejected += 1;
                        break;
                    }
                    _ => failed += 1,
                }
            }
            assert_eq!(ok, 2, "budget math: two charges fit, the third trips");
            assert_eq!(rejected, 1, "row budget never tripped (ok={ok})");
            assert_eq!(failed, 0);
            let (status, _) = http(
                &addr,
                "POST",
                &format!(
                    "/query?template={}&draw={budget_draw}&tenant=solvent",
                    templates[budget_template].name()
                ),
                "",
            );
            assert_eq!(status, 200, "other tenants unaffected by skint's budget");
            // A body bigger than the 64-byte cap is rejected up front
            // with 413 — no multi-GB allocation from a hostile header.
            let big_body = "x".repeat(65);
            let (status, body) = http(&addr, "POST", "/ingest", &big_body);
            assert_eq!(status, 413, "oversized body: {body}");
            // Checkpointing an in-memory session is a clean client error.
            let (status, body) = http(&addr, "POST", "/checkpoint", "");
            assert_eq!(status, 400, "non-durable checkpoint: {body}");
            assert!(body.contains("not durable"), "{body}");
            (ok + 1, rejected)
        }));

        let (status, body) = http(&addr, "POST", "/shutdown", "");
        assert_eq!(status, 200, "shutdown: {body}");
        let stats = server.join().expect("server thread");
        (stats, client)
    });

    let (ok, rejected) = match client {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    };
    // Drain accounting: every request produced exactly one classified
    // response, and the client saw all of them. (These clients send
    // `Connection: close`, so requests == connections here too.)
    assert_eq!(
        stats.requests,
        stats.ok_responses + stats.rejected + stats.failed
    );
    assert_eq!(stats.requests, stats.connections);
    assert_eq!(stats.ok_responses, ok + 1); // + the shutdown ack itself
    assert_eq!(stats.rejected, rejected);
    // The 413 oversized-body probe and the 400 non-durable checkpoint.
    assert_eq!(stats.failed, 2);
}

/// Minimal recursive-descent JSON validator (the vendored serde is a
/// no-op shim, so access-log lines are checked structurally by hand).
/// Returns the rest of the input after one complete JSON value.
fn json_value(s: &str) -> std::result::Result<&str, String> {
    let s = s.trim_start();
    let mut chars = s.chars();
    match chars.next() {
        Some('{') => json_sequence(&s[1..], '}', true),
        Some('[') => json_sequence(&s[1..], ']', false),
        Some('"') => json_string(s),
        Some('t') => s.strip_prefix("true").ok_or_else(|| bad(s)),
        Some('f') => s.strip_prefix("false").ok_or_else(|| bad(s)),
        Some('n') => s.strip_prefix("null").ok_or_else(|| bad(s)),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            s[..end]
                .parse::<f64>()
                .map(|_| &s[end..])
                .map_err(|e| format!("bad number {:?}: {e}", &s[..end]))
        }
        _ => Err(bad(s)),
    }
}

fn bad(s: &str) -> String {
    format!("unexpected JSON at {:?}", &s[..s.len().min(40)])
}

/// Parse `"..."` (escapes included); returns the rest after the close quote.
fn json_string(s: &str) -> std::result::Result<&str, String> {
    let inner = s.strip_prefix('"').ok_or_else(|| bad(s))?;
    let mut escape = false;
    for (i, c) in inner.char_indices() {
        match (escape, c) {
            (true, _) => escape = false,
            (false, '\\') => escape = true,
            (false, '"') => return Ok(&inner[i + 1..]),
            _ => {}
        }
    }
    Err("unterminated JSON string".to_string())
}

/// Parse the members of an object (`keyed`) or array after the opener,
/// through the matching `close`.
fn json_sequence(mut s: &str, close: char, keyed: bool) -> std::result::Result<&str, String> {
    s = s.trim_start();
    if let Some(rest) = s.strip_prefix(close) {
        return Ok(rest);
    }
    loop {
        if keyed {
            s = json_string(s.trim_start())?.trim_start();
            s = s.strip_prefix(':').ok_or_else(|| bad(s))?;
        }
        s = json_value(s)?.trim_start();
        if let Some(rest) = s.strip_prefix(',') {
            s = rest.trim_start();
        } else {
            return s.strip_prefix(close).ok_or_else(|| bad(s));
        }
    }
}

/// Assert `line` is exactly one complete JSON value.
fn assert_json(line: &str) {
    match json_value(line) {
        Ok(rest) => assert!(rest.trim().is_empty(), "trailing garbage in {line:?}"),
        Err(e) => panic!("{e} in access-log line {line:?}"),
    }
}

/// Operator profiling over the wire: `profile=1` appends a pure-JSON
/// operator profile to `/query` and `/execute` bodies, `POST /explain`
/// returns the annotated plan tree, the new per-operator metric series
/// reconcile exactly against client-side tallies of those profiles, and a
/// `slow_query_ms` threshold of zero lands `"slow":true,"profile":[..]`
/// on every query's access-log line — written atomically from concurrent
/// workers (every line parses as standalone JSON).
#[test]
fn explain_profile_and_slow_query_log_round_trip() {
    use std::collections::HashMap;
    use std::sync::Mutex;

    let (session, schema) = Session::snb(0.01, 11).expect("session");
    let templates = snb_templates(&schema);
    let log_path =
        std::env::temp_dir().join(format!("relgo_server_slowlog_{}.jsonl", std::process::id()));
    std::fs::remove_file(&log_path).ok();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        access_log: Some(log_path.display().to_string()),
        slow_query_ms: Some(0),
        ..ServerConfig::default()
    };
    let bound = Server::new(&session, &templates, config)
        .bind()
        .expect("bind");
    let addr = bound.local_addr().to_string();

    let client = std::thread::scope(|scope| {
        let server = scope.spawn(move || bound.run().expect("server run"));
        let client = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // --- concurrent profiled queries; tally operator kinds -------
            // Every /query and /execute in this test carries profile=1, so
            // the client-side tallies below are complete and the scrape
            // reconciliation can demand equality, not just >=.
            let kind_counts: Mutex<HashMap<String, u64>> = Mutex::new(HashMap::new());
            let tally = |tails: &mut Vec<String>, body: &str| {
                let (meta, _) = {
                    let mut lines = body.lines();
                    let meta = lines.next().expect("meta line").to_string();
                    assert!(meta.starts_with("ok rows="), "{meta}");
                    (meta, ())
                };
                let tail = body.lines().last().expect("profile tail");
                assert!(
                    tail.starts_with('[') && tail.ends_with(']'),
                    "profile tail is a JSON array: {tail}"
                );
                assert_json(tail);
                assert!(tail.contains("\"op\":0"), "{tail}");
                let mut counts = kind_counts.lock().unwrap();
                for part in tail.split("\"kind\":\"").skip(1) {
                    let kind = part.split('"').next().expect("kind value");
                    *counts.entry(kind.to_string()).or_insert(0) += 1;
                }
                tails.push(tail.to_string());
                meta
            };
            std::thread::scope(|inner| {
                for worker in 0..3u64 {
                    let (addr, templates, tally) = (&addr, &templates, &tally);
                    inner.spawn(move || {
                        let mut tails = Vec::new();
                        for template in templates.iter() {
                            let path = format!(
                                "/query?template={}&draw={worker}&profile=1",
                                template.name()
                            );
                            let (status, body) = http(addr, "POST", &path, "");
                            assert_eq!(status, 200, "profiled query: {body}");
                            tally(&mut tails, &body);
                        }
                    });
                }
            });

            // --- profiled prepared execution -----------------------------
            let (status, body) = http(
                &addr,
                "POST",
                &format!("/prepare?template={}", templates[0].name()),
                "",
            );
            assert_eq!(status, 200, "prepare: {body}");
            let stmt = body.trim().strip_prefix("ok stmt=").expect("stmt id");
            let (status, body) = http(
                &addr,
                "POST",
                &format!("/execute?stmt={stmt}&draw=5&profile=1"),
                "",
            );
            assert_eq!(status, 200, "profiled execute: {body}");
            let mut tails = Vec::new();
            tally(&mut tails, &body);
            // The same draw without profile=1 still executes profiled
            // (slow_query_ms arms it) but must NOT carry the JSON tail —
            // and the rows must be identical either way.
            let (status, plain) = http(&addr, "POST", &format!("/execute?stmt={stmt}&draw=5"), "");
            assert_eq!(status, 200, "unprofiled execute: {plain}");
            assert!(
                !plain.lines().last().unwrap_or("").starts_with('['),
                "no tail without profile=1: {plain}"
            );
            let profiled_lines: Vec<&str> = body.lines().collect();
            let plain_lines: Vec<&str> = plain.lines().collect();
            assert_eq!(profiled_lines.len(), plain_lines.len() + 1);
            assert_eq!(
                &profiled_lines[..plain_lines.len()],
                &plain_lines[..],
                "profile=1 changes only the tail line"
            );
            let tail = tails.pop().expect("tally kept the tail");
            for part in tail.split("\"kind\":\"").skip(1) {
                let kind = part.split('"').next().expect("kind value");
                *kind_counts
                    .lock()
                    .unwrap()
                    .entry(kind.to_string())
                    .or_insert(0) += 1;
            }

            // --- scrape: operator series reconcile exactly ---------------
            let (status, scrape_body) = http(&addr, "GET", "/metrics", "");
            assert_eq!(status, 200);
            text::validate(&scrape_body).expect("scrape validates");
            let scrape = text::parse(&scrape_body).expect("scrape parses");
            let counts = kind_counts.into_inner().unwrap();
            assert!(counts.len() >= 3, "several operator kinds: {counts:?}");
            for (kind, n) in &counts {
                assert_eq!(
                    scrape.value("relgo_operator_seconds_count", &[("op", kind)]),
                    Some(*n as f64),
                    "relgo_operator_seconds{{op={kind}}} reconciles"
                );
                assert_eq!(
                    scrape.value("relgo_operator_rows_count", &[("op", kind), ("dir", "out")]),
                    Some(*n as f64),
                    "relgo_operator_rows{{op={kind},dir=out}} reconciles"
                );
            }
            assert!(
                scrape.value("relgo_qerror_count", &[]).unwrap_or(0.0) > 0.0,
                "aggregate Q-error histogram populated"
            );
            // Response serialization is now a traced stage on the engine's
            // stage histogram (satellite: serving-edge trace coverage).
            assert!(
                scrape
                    .value("relgo_query_stage_seconds_count", &[("stage", "serialize")])
                    .unwrap_or(0.0)
                    > 0.0,
                "serialize stage recorded at the serving edge"
            );

            // --- POST /explain -------------------------------------------
            let (status, body) = http(
                &addr,
                "POST",
                &format!("/explain?template={}&draw=1", templates[0].name()),
                "",
            );
            assert_eq!(status, 200, "explain: {body}");
            let mut lines = body.lines();
            let meta = lines.next().expect("explain meta");
            assert!(meta.starts_with("ok ops="), "{meta}");
            assert!(meta.contains("analyze=1"), "{meta}");
            let ops: usize = meta
                .split("ops=")
                .nth(1)
                .and_then(|s| s.split_whitespace().next())
                .and_then(|s| s.parse().ok())
                .expect("ops count");
            let tree: Vec<&str> = lines.collect();
            assert_eq!(tree.len(), ops, "one rendered line per operator");
            for (i, line) in tree.iter().enumerate() {
                assert!(
                    line.contains(&format!("[op={i} est=")) && line.contains(" act="),
                    "operator {i} annotated with est/act: {line}"
                );
            }
            // Plan-only EXPLAIN: estimates, no actuals.
            let (status, body) = http(
                &addr,
                "POST",
                &format!("/explain?template={}&draw=1&analyze=0", templates[0].name()),
                "",
            );
            assert_eq!(status, 200, "explain analyze=0: {body}");
            assert!(body.starts_with("ok ops="), "{body}");
            assert!(body.contains("analyze=0"), "{body}");
            assert!(body.contains("[op=0 est="), "{body}");
            assert!(!body.contains(" act="), "plan-only explain: {body}");
            // Parameter validation mirrors /query.
            let (status, _) = http(&addr, "POST", "/explain?template=NoSuch&draw=0", "");
            assert_eq!(status, 400);
            let (status, _) = http(
                &addr,
                "POST",
                &format!("/explain?template={}", templates[0].name()),
                "",
            );
            assert_eq!(status, 400, "missing draw");
        }));
        let (status, _) = http(&addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        server.join().expect("server thread");
        client
    });
    if let Err(p) = client {
        std::fs::remove_file(&log_path).ok();
        std::panic::resume_unwind(p);
    }

    // --- the slow-query log ----------------------------------------------
    // Threshold 0 makes every request "slow": each access-log line must be
    // standalone JSON (multi-worker writes stay line-atomic), and every
    // served query line carries the full operator profile.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    let mut profiled_lines = 0u64;
    let mut total = 0u64;
    for line in log.lines() {
        total += 1;
        assert_json(line);
        assert!(line.contains("\"slow\":true"), "threshold 0: {line}");
        let served_query = (line.contains("\"endpoint\":\"query\"")
            || line.contains("\"endpoint\":\"execute\""))
            && line.contains("\"status\":200");
        if served_query {
            assert!(
                line.contains("\"profile\":[{\"op\":0,"),
                "slow query logs its operator profile: {line}"
            );
            assert!(
                line.contains("\"stages\":{") && line.contains("\"serialize\":"),
                "slow query logs the serialize stage: {line}"
            );
            profiled_lines += 1;
        }
        // The analyze=1 explain logs its profile too (the analyze=0 one
        // never executed, so it has none).
        if line.contains("\"endpoint\":\"explain\"") && line.contains("\"status\":200") {
            profiled_lines += u64::from(line.contains("\"profile\":[{\"op\":0,"));
        }
    }
    assert!(total > 20, "the workload produced many lines: {total}");
    assert!(
        profiled_lines > 10,
        "many profiled query lines: {profiled_lines}"
    );
    std::fs::remove_file(&log_path).ok();
}

/// A client holding one persistent connection: sends requests back to
/// back on the same socket and reads each framed response (the
/// `Content-Length` header bounds the body, so the socket stays
/// byte-synchronized for the next exchange).
struct KeepAliveClient {
    stream: TcpStream,
}

impl KeepAliveClient {
    fn connect(addr: &str) -> KeepAliveClient {
        KeepAliveClient {
            stream: TcpStream::connect(addr).expect("connect"),
        }
    }

    /// One exchange. Returns `(status, head, body)`; `head` is the raw
    /// header block (for `Connection:` / `Retry-After:` assertions).
    fn send(&mut self, method: &str, path: &str, body: &str) -> (u16, String, String) {
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: keepalive\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes()).expect("send request");
        self.read_response()
    }

    /// Send raw bytes (malformed-framing probes) and read one response.
    fn send_raw(&mut self, raw: &[u8]) -> (u16, String, String) {
        self.stream.write_all(raw).expect("send raw");
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, String, String) {
        let mut reader = BufReader::new(&self.stream);
        let mut head = String::new();
        loop {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).expect("read header line") > 0,
                "connection closed mid-response (head so far: {head:?})"
            );
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.trim().parse().ok())
            .expect("Content-Length header");
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("read body");
        (status, head, String::from_utf8(body).expect("UTF-8 body"))
    }

    /// True once the server has closed its end (EOF on read).
    fn closed_by_server(mut self) -> bool {
        let mut buf = [0u8; 1];
        matches!(self.stream.read(&mut buf), Ok(0))
    }
}

/// Keep-alive, request deadlines, strict framing, and the access log,
/// pinned down in-process with a deliberately tight config.
#[test]
fn keepalive_deadlines_framing_and_access_log() {
    use std::time::Duration;

    let (session, schema) = Session::snb(0.01, 11).expect("session");
    let templates = snb_templates(&schema);
    let log_path =
        std::env::temp_dir().join(format!("relgo_server_access_{}.jsonl", std::process::id()));
    std::fs::remove_file(&log_path).ok();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_header_bytes: 512,
        idle_timeout: Duration::from_millis(300),
        max_requests_per_connection: 4,
        access_log: Some(log_path.display().to_string()),
        ..ServerConfig::default()
    };
    let bound = Server::new(&session, &templates, config)
        .bind()
        .expect("bind");
    let addr = bound.local_addr().to_string();

    let (stats, client) = std::thread::scope(|scope| {
        let server = scope.spawn(move || bound.run().expect("server run"));
        let client = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // --- keep-alive reuse: several requests, one socket ----------
            let mut ka = KeepAliveClient::connect(&addr);
            let query_path = format!("/query?template={}&draw=1", templates[0].name());
            for _ in 0..3 {
                let (status, head, body) = ka.send("POST", &query_path, "");
                assert_eq!(status, 200, "keep-alive query: {body}");
                assert!(
                    head.contains("Connection: keep-alive"),
                    "reused responses advertise keep-alive: {head}"
                );
            }
            // The 4th request hits max_requests_per_connection: still
            // served, but the server announces and performs the close.
            let (status, head, _) = ka.send("GET", "/healthz", "");
            assert_eq!(status, 200);
            assert!(head.contains("Connection: close"), "{head}");
            assert!(ka.closed_by_server(), "request cap closes the connection");

            // --- idle timeout closes a quiet connection ------------------
            let mut idle = KeepAliveClient::connect(&addr);
            let (status, _, _) = idle.send("GET", "/healthz", "");
            assert_eq!(status, 200);
            std::thread::sleep(Duration::from_millis(900));
            assert!(
                idle.closed_by_server(),
                "idle connection closed after idle_timeout"
            );

            // --- deadline_ms=0 expires before the first morsel -----------
            let mut ka = KeepAliveClient::connect(&addr);
            let (status, head, body) = ka.send("POST", &format!("{query_path}&deadline_ms=0"), "");
            assert_eq!(status, 503, "expired deadline: {body}");
            assert!(head.contains("Retry-After:"), "{head}");
            assert!(body.contains("deadline"), "{body}");
            // A handler-level error does NOT poison the connection: the
            // same socket serves the next request fine.
            let (status, _, _) = ka.send("POST", &query_path, "");
            assert_eq!(status, 200, "connection survives a 503");
            let (status, _, body) = ka.send("POST", &format!("{query_path}&deadline_ms=60000"), "");
            assert_eq!(status, 200, "generous deadline passes: {body}");

            // --- client-supplied bindings on /execute --------------------
            let (status, _, body) = ka.send(
                "POST",
                &format!("/prepare?template={}", templates[0].name()),
                "",
            );
            // 4th request on this socket: the cap closes it after this.
            assert_eq!(status, 200, "prepare: {body}");
            let stmt = body
                .trim()
                .strip_prefix("ok stmt=")
                .expect("stmt id")
                .to_string();
            assert!(ka.closed_by_server());
            let mut ka = KeepAliveClient::connect(&addr);
            // The template's own draw-7 bindings, sent explicitly by value:
            // the two paths must produce identical rows.
            let bindings = templates[0].bindings(7).expect("bindings");
            let bind_row = bindings
                .iter()
                .map(wire::encode_value)
                .collect::<Vec<_>>()
                .join("|")
                // The wire row rides inside a URL query value: escape the
                // escape character itself so the query-param decode
                // yields the wire row back.
                .replace('%', "%25");
            let (status, _, by_bind) =
                ka.send("POST", &format!("/execute?stmt={stmt}&bind={bind_row}"), "");
            assert_eq!(status, 200, "bind execute: {by_bind}");
            let (status, _, by_draw) = ka.send("POST", &format!("/execute?stmt={stmt}&draw=7"), "");
            assert_eq!(status, 200, "draw execute: {by_draw}");
            assert_eq!(
                decode_query_body(&by_bind).1,
                decode_query_body(&by_draw).1,
                "bind= and draw= produce identical rows"
            );
            // Wrong arity is a clean 400, and both-params is rejected.
            let (status, _, body) = ka.send("POST", &format!("/execute?stmt={stmt}&bind=i:1"), "");
            assert!(
                status == 400 || bindings.len() == 1,
                "wrong-arity bind must 400: {status} {body}"
            );
            let (status, _, _) =
                ka.send("POST", &format!("/execute?stmt={stmt}&bind=i:1&draw=7"), "");
            assert_eq!(status, 400, "bind and draw are mutually exclusive");

            // --- framing errors: reject and close ------------------------
            // Request line past max_header_bytes (512).
            let mut f = KeepAliveClient::connect(&addr);
            let long_path = format!("/healthz?pad={}", "x".repeat(600));
            let (status, _, body) = f.send("GET", &long_path, "");
            assert_eq!(status, 431, "oversized request line: {body}");
            assert!(f.closed_by_server(), "431 poisons the connection");
            // Header block past the cap (many medium headers).
            let mut f = KeepAliveClient::connect(&addr);
            let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
            for i in 0..10 {
                raw.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(64)));
            }
            raw.push_str("\r\n");
            let (status, _, _) = f.send_raw(raw.as_bytes());
            assert_eq!(status, 431, "oversized header block");
            assert!(f.closed_by_server());
            // Malformed Content-Length.
            let mut f = KeepAliveClient::connect(&addr);
            let (status, _, body) =
                f.send_raw(b"POST /ingest HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
            assert_eq!(status, 400, "malformed Content-Length: {body}");
            assert!(body.contains("Content-Length"), "{body}");
            assert!(f.closed_by_server());
            // Duplicate Content-Length (smuggling vector).
            let mut f = KeepAliveClient::connect(&addr);
            let (status, _, body) = f.send_raw(
                b"POST /ingest HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhello",
            );
            assert_eq!(status, 400, "duplicate Content-Length: {body}");
            assert!(body.contains("duplicate"), "{body}");
            assert!(f.closed_by_server());

            // --- invalid UTF-8 percent-escape on ingest ------------------
            let mut ka = KeepAliveClient::connect(&addr);
            let (status, _, body) = ka.send(
                "POST",
                "/ingest",
                "Person|i:900008|s:ok|d:17000\nPerson|i:900009|s:bad%FF|d:17000\n",
            );
            assert_eq!(status, 400, "invalid UTF-8 escape commits nothing: {body}");
            assert!(
                body.contains("line 2") && body.contains("invalid UTF-8"),
                "offending line is named: {body}"
            );
            // ...and nothing committed: epoch still 0 (no commit landed).
            let (_, _, health) = ka.send("GET", "/healthz", "");
            assert_eq!(health.trim(), "ok epoch=0");

            // --- HTTP/1.0 and Connection: close semantics ----------------
            let mut f = KeepAliveClient::connect(&addr);
            let (status, head, _) =
                f.send_raw(b"GET /healthz HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
            assert_eq!(status, 200);
            assert!(head.contains("Connection: close"), "{head}");
            assert!(f.closed_by_server(), "bare HTTP/1.0 closes");

            // --- scrape reconciliation -----------------------------------
            let mut m = KeepAliveClient::connect(&addr);
            let (status, _, scrape_body) = m.send("GET", "/metrics", "");
            assert_eq!(status, 200);
            let scrape = text::parse(&scrape_body).expect("scrape parses");
            let reuses = scrape
                .value("relgo_http_keepalive_reuses_total", &[])
                .expect("keepalive series present");
            assert!(reuses >= 10.0, "reuse happened many times: {reuses}");
            assert_eq!(
                scrape.value("relgo_http_deadline_expirations_total", &[]),
                Some(1.0),
                "exactly one deadline expiry"
            );
            let open = scrape
                .value("relgo_http_open_connections", &[])
                .expect("open-connections gauge present");
            assert!(open >= 1.0, "this scrape's own connection is open: {open}");
        }));
        // Shutdown over a fresh connection.
        let (status, _) = http(&addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        let stats = server.join().expect("server thread");
        (stats, client)
    });
    if let Err(p) = client {
        std::fs::remove_file(&log_path).ok();
        std::panic::resume_unwind(p);
    }

    // Keep-alive accounting: more requests than connections, and every
    // request classified exactly once.
    assert!(
        stats.requests > stats.connections,
        "reuse means requests ({}) > connections ({})",
        stats.requests,
        stats.connections
    );
    assert_eq!(
        stats.requests,
        stats.ok_responses + stats.rejected + stats.failed
    );

    // Access log: one JSON object per request (framing rejections
    // included), fields present and sane.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(
        lines.len() as u64,
        stats.requests,
        "one access-log line per request"
    );
    let mut saw_query_stages = false;
    let mut saw_431 = false;
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSON object per line: {line}"
        );
        for field in [
            "\"unix_ms\":",
            "\"conn\":",
            "\"seq\":",
            "\"endpoint\":\"",
            "\"status\":",
        ] {
            assert!(line.contains(field), "missing {field}: {line}");
        }
        if line.contains("\"endpoint\":\"query\"") && line.contains("\"status\":200") {
            saw_query_stages |= line.contains("\"stages\":{") && line.contains("\"execute\":");
        }
        saw_431 |= line.contains("\"status\":431");
    }
    assert!(saw_query_stages, "served queries log per-stage micros");
    assert!(saw_431, "framing rejections are logged too");
    std::fs::remove_file(&log_path).ok();
}
