//! The server's line-oriented wire format.
//!
//! Values travel **tagged** so every [`Value`] variant round-trips without
//! schema knowledge on the client side:
//!
//! | tag | variant | example |
//! |---|---|---|
//! | `n:` | `Null` | `n:` |
//! | `i:` | `Int` | `i:42` |
//! | `f:` | `Float` | `f:1.5` |
//! | `s:` | `Str` | `s:Alice` |
//! | `b:` | `Bool` | `b:true` |
//! | `d:` | `Date` | `d:18000` (days since the Unix epoch) |
//!
//! A row is its values joined with `|`; a response body is one row per
//! line. String payloads percent-encode `%`, `|`, and line breaks so the
//! separators stay unambiguous (floats use Rust's shortest round-trip
//! `Display`, so `decode_value(encode_value(v)) == v` bit-for-bit).
//!
//! Ingest request bodies reuse the same value syntax, one operation per
//! line:
//!
//! ```text
//! Person|i:800001|s:Bob|d:17000      # insert a row into Person
//! edge|Knows|i:800001|i:3|d:17001    # insert an edge row (RGMapping-checked)
//! delete|Person|800001               # delete by primary key
//! ```

use relgo::ingest::IngestBatch;
use relgo_common::{RelGoError, Result, Value};

/// Encode one value with its type tag.
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "n:".to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(x) => format!("f:{x}"),
        Value::Str(s) => format!("s:{}", percent_encode(s)),
        Value::Bool(b) => format!("b:{b}"),
        Value::Date(d) => format!("d:{d}"),
    }
}

/// Decode one tagged value.
pub fn decode_value(s: &str) -> Result<Value> {
    let (tag, payload) = s
        .split_once(':')
        .ok_or_else(|| RelGoError::query(format!("untagged wire value {s:?}")))?;
    match tag {
        "n" => Ok(Value::Null),
        "i" => payload
            .parse()
            .map(Value::Int)
            .map_err(|_| RelGoError::query(format!("malformed int {payload:?}"))),
        "f" => payload
            .parse()
            .map(Value::Float)
            .map_err(|_| RelGoError::query(format!("malformed float {payload:?}"))),
        "s" => percent_decode(payload).map(Value::str),
        "b" => payload
            .parse()
            .map(Value::Bool)
            .map_err(|_| RelGoError::query(format!("malformed bool {payload:?}"))),
        "d" => payload
            .parse()
            .map(Value::Date)
            .map_err(|_| RelGoError::query(format!("malformed date {payload:?}"))),
        other => Err(RelGoError::query(format!("unknown value tag {other:?}"))),
    }
}

/// Encode a row: tagged values joined with `|`.
pub fn encode_row(row: &[Value]) -> String {
    row.iter().map(encode_value).collect::<Vec<_>>().join("|")
}

/// Decode one `|`-separated row line.
pub fn decode_row(line: &str) -> Result<Vec<Value>> {
    if line.is_empty() {
        return Ok(Vec::new());
    }
    line.split('|').map(decode_value).collect()
}

/// Percent-encode the characters that would collide with the wire
/// format's separators (`|`, newlines), the escape itself (`%`), or the
/// decoder's `+`-for-space tolerance. All other bytes — including
/// multi-byte UTF-8 sequences — pass through verbatim, so
/// `percent_decode(percent_encode(s)) == s` for every string.
pub fn percent_encode(s: &str) -> String {
    let mut out = Vec::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b'|' | b'\n' | b'\r' | b'&' | b'=' | b' ' | b'+' => {
                out.push(b'%');
                out.extend_from_slice(format!("{b:02X}").as_bytes());
            }
            _ => out.push(b),
        }
    }
    // Only ASCII bytes were replaced (with ASCII escapes), so every
    // multi-byte sequence survives intact and the buffer is valid UTF-8.
    String::from_utf8(out).expect("percent_encode preserves UTF-8")
}

/// Reverse [`percent_encode`]; also tolerates `+` for space (HTML form
/// convention) and passes malformed escapes (`%2`, `%zz`) through
/// untouched. Escapes that decode to invalid UTF-8 (e.g. a bare `%FF`)
/// are an **error**, not a lossy U+FFFD substitution — on the ingest
/// path a silent substitution would commit corrupted strings.
pub fn percent_decode(s: &str) -> Result<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                match (
                    hex_digit(bytes.get(i + 1).copied()),
                    hex_digit(bytes.get(i + 2).copied()),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|e| {
        RelGoError::query(format!(
            "percent-escapes decode to invalid UTF-8 at byte {} of {s:?}",
            e.utf8_error().valid_up_to()
        ))
    })
}

fn hex_digit(b: Option<u8>) -> Option<u8> {
    match b? {
        b @ b'0'..=b'9' => Some(b - b'0'),
        b @ b'a'..=b'f' => Some(b - b'a' + 10),
        b @ b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Apply one ingest body line to a batch: `Table|v...` inserts a row,
/// `edge|Table|v...` inserts an edge row, `delete|Table|key` deletes by
/// primary key.
pub fn apply_ingest_line(batch: &mut IngestBatch<'_>, line: &str) -> Result<()> {
    let mut parts = line.split('|');
    let head = parts
        .next()
        .ok_or_else(|| RelGoError::query("empty ingest line"))?;
    match head {
        "delete" => {
            let table = parts
                .next()
                .ok_or_else(|| RelGoError::query("delete needs a table name"))?;
            let key = parts
                .next()
                .ok_or_else(|| RelGoError::query("delete needs a primary key"))?;
            let key: i64 = key
                .parse()
                .map_err(|_| RelGoError::query(format!("malformed delete key {key:?}")))?;
            if parts.next().is_some() {
                return Err(RelGoError::query("delete takes exactly table|key"));
            }
            batch.delete_row(table, key)
        }
        "edge" => {
            let table = parts
                .next()
                .ok_or_else(|| RelGoError::query("edge insert needs a table name"))?;
            let row = parts.map(decode_value).collect::<Result<Vec<_>>>()?;
            batch.insert_edge(table, row)
        }
        table => {
            let row = parts.map(decode_value).collect::<Result<Vec<_>>>()?;
            batch.insert_row(table, row)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let values = [
            Value::Null,
            Value::Int(-42),
            Value::Float(1.5),
            Value::Float(f64::MIN_POSITIVE),
            Value::str("plain"),
            Value::str("pipes|and%escapes\nand newlines"),
            Value::str("Émile"),
            Value::str("naïve 🦀 — ユニコード"),
            Value::str("a+b plus%2Bliteral"),
            Value::Bool(true),
            Value::Date(18_000),
        ];
        for v in &values {
            let encoded = encode_value(v);
            assert!(!encoded.contains('|'), "separator leaked: {encoded}");
            assert_eq!(&decode_value(&encoded).unwrap(), v, "via {encoded}");
        }
        let row: Vec<Value> = values.to_vec();
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
        assert_eq!(decode_row("").unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn string_encoding_keeps_separators_unambiguous() {
        let v = Value::str("a|b%c\r\nd");
        let encoded = encode_value(&v);
        assert!(!encoded[2..].contains('|'));
        assert!(!encoded.contains('\n'));
        assert_eq!(decode_value(&encoded).unwrap(), v);
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(decode_value("untagged").is_err());
        assert!(decode_value("x:1").is_err());
        assert!(decode_value("i:notanint").is_err());
        assert!(decode_value("b:maybe").is_err());
    }

    #[test]
    fn non_ascii_strings_round_trip() {
        for s in ["Émile", "Ω≈ç√∫", "🦀🦀", "日本語テキスト", "é%é|é\né+é"]
        {
            let encoded = percent_encode(s);
            assert_eq!(percent_decode(&encoded).unwrap(), s, "via {encoded:?}");
            let v = Value::str(s);
            assert_eq!(decode_value(&encode_value(&v)).unwrap(), v);
        }
    }

    #[test]
    fn percent_decode_tolerates_malformed_escapes() {
        assert_eq!(percent_decode("a%2").unwrap(), "a%2");
        assert_eq!(percent_decode("a%zz").unwrap(), "a%zz");
        assert_eq!(percent_decode("a+b%20c").unwrap(), "a b c");
    }

    #[test]
    fn percent_decode_rejects_invalid_utf8_instead_of_substituting() {
        // `%FF` is not valid UTF-8 anywhere; lossy decoding would silently
        // commit U+FFFD on the ingest path.
        let err = percent_decode("a%FFb").unwrap_err();
        assert!(err.to_string().contains("invalid UTF-8"), "{err}");
        // A multi-byte sequence torn in half is equally invalid.
        assert!(percent_decode("%C3").is_err());
        // ...but a *complete* escaped UTF-8 sequence decodes fine.
        assert_eq!(percent_decode("%C3%89mile").unwrap(), "Émile");
        assert!(decode_value("s:a%FFb").is_err());
    }
}
