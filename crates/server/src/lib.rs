//! # relgo-server
//!
//! A minimal, std-only HTTP/1.1 edge over one shared [`Session`]: a fixed
//! pool of blocking worker threads serves **persistent connections** (each
//! connection carries a keep-alive request loop) through the whole query
//! lifecycle — templated ad-hoc queries through the plan cache,
//! prepared-statement handles (template draws or client-supplied `bind=`
//! values), optimistic ingest batches, and a Prometheus text-format
//! `/metrics` scrape that folds the session's observability snapshot
//! together with the server's own HTTP-edge series (both live on the
//! session's metrics registry, so one scrape covers the whole process).
//!
//! ## Keep-alive
//!
//! Connections are persistent by default (HTTP/1.1 semantics): the worker
//! loops reading requests off one socket until the client sends
//! `Connection: close` (or speaks HTTP/1.0 without `keep-alive`), the
//! connection idles past [`ServerConfig::idle_timeout`], it reaches
//! [`ServerConfig::max_requests_per_connection`], a framing error poisons
//! the stream position (`400`/`413`/`431` close; handler-level errors do
//! not), or drain begins — shutdown finishes the in-flight request, then
//! answers it with `Connection: close`. Every response advertises the
//! decision in its `Connection` header.
//!
//! ## Deadlines
//!
//! `/query` and `/execute` accept a `deadline_ms` parameter (falling back
//! to [`ServerConfig::default_deadline_ms`]): the remaining budget rides
//! into execution as a [`TimeBudget`] checked at every morsel boundary, so
//! an expired query stops within one morsel's work and answers `503` with
//! `Retry-After` instead of pinning a worker.
//!
//! ## Access logs
//!
//! With [`ServerConfig::access_log`] set, every request appends one JSON
//! line — `{"unix_ms":..,"conn":..,"seq":..,"tenant":..,"endpoint":..,
//! "method":..,"path":..,"status":..,"rows":..,"micros":..,
//! "stages":{"execute":..}}` — keyed by the same `QueryTrace` spans the
//! metrics registry records (stage micros appear for the serving endpoints
//! that execute queries; response serialization and ingest WAL appends are
//! traced too).
//!
//! ## Profiling and the slow-query log
//!
//! `profile=1` on `/query` or `/execute` runs the query with
//! operator-level profiling and appends one pure-JSON line — the
//! per-operator profile (`[{"op":..,"kind":..,"est":..,"rows_out":..,
//! "q":..},..]`) — after the result rows. With
//! [`ServerConfig::slow_query_ms`] set, *every* query is profiled and any
//! request whose handling time reaches the threshold gets
//! `"slow":true,"profile":[..]` folded into its access-log line, so the
//! operator breakdown of an outlier is on disk even when the client never
//! asked for it.
//!
//! ## Endpoints
//!
//! | method + path | semantics |
//! |---|---|
//! | `GET /healthz` | liveness: `ok epoch=E` (durable sessions append ` wal_bytes_since_checkpoint=B`) |
//! | `GET /metrics` | Prometheus text format, the full registry |
//! | `POST /query?template=NAME&draw=N[&mode=M][&tenant=T][&profile=1]` | instantiate + `run_cached` |
//! | `POST /prepare?template=NAME[&mode=M][&tenant=T]` | pin a prepared statement, returns `ok stmt=ID` |
//! | `POST /execute?stmt=ID&draw=N[&tenant=T][&profile=1]` | execute a prepared handle with the template's bindings |
//! | `POST /unprepare?stmt=ID` | release a prepared handle (and its pinned plan) |
//! | `POST /explain?template=NAME&draw=N[&mode=M][&analyze=0]` | EXPLAIN ANALYZE: the rendered plan tree with est/act rows + Q-error per operator |
//! | `POST /ingest[?tenant=T]` | line-based batch: `Table\|i:1\|s:x\|d:17000`, `delete\|Table\|1` |
//! | `POST /checkpoint` | snapshot the current epoch + compact the WAL behind it (durable sessions) |
//! | `POST /shutdown` | respond, then drain: in-flight requests complete, workers exit |
//!
//! Lost `/ingest` commit races answer `409` with a `Retry-After` header —
//! the batch is retryable as-is against the advanced epoch.
//!
//! Result rows travel as tagged values (`n:` null, `i:` int, `f:` float,
//! `s:` string, `b:` bool, `d:` date) joined with `|`, one row per line,
//! after an `ok rows=N cached=B epoch=E mode=M` meta line — see [`wire`].
//!
//! ## Multi-tenancy
//!
//! Every serving request carries an optional `tenant` parameter (default
//! `"default"`). Each tenant gets an admission gate (at most
//! `max_inflight_per_tenant` requests executing at once) and a cumulative
//! [`RowBudget`] over served result rows; both reject with `429` when
//! exhausted, and every rejection increments
//! `relgo_http_admission_rejections_total`. `/prepare` runs under the same
//! gate and the server-wide prepared-statement table is capped
//! (`max_prepared_statements`, released via `/unprepare`), so no client can
//! grow pinned plans without bound. Request bodies larger than
//! `max_body_bytes` are rejected with `413` before any allocation.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use relgo::metrics::trace::{Stage, StageTimings};
use relgo::metrics::{Counter, Gauge, Histogram};
use relgo::prelude::*;
use relgo_common::morsel::RowBudget;

pub mod wire;

/// How long a worker sleeps between empty non-blocking accept polls.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Socket read timeout once a request has started arriving: a client that
/// stalls mid-request cannot pin a worker (or block drain) forever. The
/// separate [`ServerConfig::idle_timeout`] governs the quiet gap *between*
/// requests on a persistent connection.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns a cloned listener handle).
    pub workers: usize,
    /// Per-tenant concurrent-request admission limit.
    pub max_inflight_per_tenant: usize,
    /// Per-tenant cumulative budget of served result rows.
    pub tenant_row_budget: usize,
    /// Largest accepted request body; a bigger `Content-Length` is a `413`
    /// before any buffer is allocated (the header is untrusted input).
    pub max_body_bytes: usize,
    /// Server-wide cap on live prepared-statement handles; `/prepare` past
    /// the cap is a `429` until `/unprepare` releases a slot.
    pub max_prepared_statements: usize,
    /// Cumulative cap on request-line + header bytes per request; past it
    /// the request is rejected with `431` (a streaming endless header can
    /// no longer OOM a worker).
    pub max_header_bytes: usize,
    /// How long a persistent connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Requests served over one connection before the server closes it
    /// (bounds per-connection resource drift under very long reuse).
    pub max_requests_per_connection: usize,
    /// Server-wide default execution deadline applied when a request does
    /// not pass `deadline_ms`; `None` leaves queries unbounded.
    pub default_deadline_ms: Option<u64>,
    /// Append one JSON access-log line per request to this path
    /// (`None` disables access logging).
    pub access_log: Option<String>,
    /// Slow-query threshold: requests whose total handling time reaches
    /// this many milliseconds get their full per-operator profile appended
    /// to their access-log line (`"profile":[..]`). Setting it arms
    /// operator profiling on every `/query` and `/execute`, whether or not
    /// the client passed `profile=1`. `None` disables both.
    pub slow_query_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_inflight_per_tenant: 8,
            tenant_row_budget: 10_000_000,
            max_body_bytes: 4 << 20,
            max_prepared_statements: 1024,
            max_header_bytes: 16 << 10,
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1000,
            default_deadline_ms: None,
            access_log: None,
            slow_query_ms: None,
        }
    }
}

/// What one server run saw, returned by [`BoundServer::run`] after drain.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// TCP connections accepted (a persistent connection counts once).
    pub connections: u64,
    /// HTTP requests answered across all connections
    /// (`== ok_responses + rejected + failed`; under keep-alive reuse this
    /// exceeds `connections`).
    pub requests: u64,
    /// Requests that produced a 2xx response.
    pub ok_responses: u64,
    /// Requests rejected by admission control or a row budget (429).
    pub rejected: u64,
    /// Requests that produced any other non-2xx response.
    pub failed: u64,
}

/// An unbound server description: a session to serve, the templates it
/// resolves `template=NAME` against, and the tuning config.
pub struct Server<'s> {
    session: &'s Session,
    templates: &'s [QueryTemplate],
    config: ServerConfig,
}

impl<'s> Server<'s> {
    /// Describe a server over `session` resolving `templates`.
    pub fn new(
        session: &'s Session,
        templates: &'s [QueryTemplate],
        config: ServerConfig,
    ) -> Server<'s> {
        Server {
            session,
            templates,
            config,
        }
    }

    /// Bind the listener (the local address — and OS-chosen port — is
    /// known from here on) without starting any worker.
    pub fn bind(self) -> Result<BoundServer<'s>> {
        let listener = TcpListener::bind(&self.config.addr)
            .map_err(|e| RelGoError::execution(format!("bind {}: {e}", self.config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| RelGoError::execution(format!("local_addr: {e}")))?;
        Ok(BoundServer {
            server: self,
            listener,
            local_addr,
        })
    }
}

/// A bound-but-not-yet-running server; [`run`](BoundServer::run) blocks
/// the calling thread until a `POST /shutdown` drains it.
pub struct BoundServer<'s> {
    server: Server<'s>,
    listener: TcpListener,
    local_addr: SocketAddr,
}

impl BoundServer<'_> {
    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serve until shutdown. Every worker accepts on a cloned listener
    /// handle in non-blocking mode; after the shutdown flag rises each
    /// worker keeps accepting until the backlog is empty (every connection
    /// the OS already queued gets a complete response — drain loses zero
    /// in-flight requests), then exits. After the last worker exits, one
    /// final accept sweep on the calling thread serves anything the kernel
    /// queued between a worker's last empty poll and that exit; only a
    /// connection completing its handshake *after* the sweep misses out,
    /// and dropping the listener resets it rather than leaving it hanging.
    pub fn run(self) -> Result<ServeStats> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| RelGoError::execution(format!("set_nonblocking: {e}")))?;
        let shared = Shared::new(
            self.server.session,
            self.server.templates,
            &self.server.config,
        )?;
        let workers = self.server.config.workers.max(1);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let listener = self
                    .listener
                    .try_clone()
                    .map_err(|e| RelGoError::execution(format!("clone listener: {e}")))?;
                let shared = &shared;
                handles.push(scope.spawn(move || worker_loop(listener, shared)));
            }
            for h in handles {
                h.join()
                    .map_err(|_| RelGoError::execution("server worker panicked".to_string()))?;
            }
            Ok::<(), RelGoError>(())
        })?;
        // Final drain sweep (see the doc comment above): the listener is
        // still non-blocking, so this stops at the first empty poll.
        while let Ok((stream, _)) = self.listener.accept() {
            handle_connection(stream, &shared);
        }
        // Graceful-drain checkpoint: with every request answered and no
        // writer left, snapshot the final epoch so the next open replays
        // nothing. Best-effort — a failure leaves the WAL authoritative
        // (and counted in relgo_checkpoint_failures_total).
        if self.server.session.is_durable() {
            let _ = self.server.session.checkpoint();
        }
        Ok(shared.stats())
    }
}

/// A registered tenant: its admission gate and cumulative row budget.
struct Tenant {
    inflight: AtomicUsize,
    budget: RowBudget,
}

/// HTTP-edge metric handles, registered on the *session's* registry so a
/// single `/metrics` scrape covers both the engine and the edge.
struct EdgeMetrics {
    requests: [Arc<Counter>; Endpoint::ALL.len()],
    latency: [Arc<Histogram>; Endpoint::ALL.len()],
    active: Arc<Gauge>,
    open_connections: Arc<Gauge>,
    keepalive_reuses: Arc<Counter>,
    deadline_expirations: Arc<Counter>,
    rejections: Arc<Counter>,
    rows_served: Arc<Counter>,
}

impl EdgeMetrics {
    fn new(session: &Session) -> EdgeMetrics {
        let reg = session.metrics().registry();
        EdgeMetrics {
            requests: Endpoint::ALL.map(|e| {
                reg.counter_with(
                    "relgo_http_requests_total",
                    "HTTP requests handled, by endpoint.",
                    &[("endpoint", e.name())],
                )
            }),
            latency: Endpoint::ALL.map(|e| {
                reg.histogram_with(
                    "relgo_http_request_seconds",
                    "HTTP request handling latency, by endpoint.",
                    &[("endpoint", e.name())],
                )
            }),
            active: reg.gauge(
                "relgo_http_active_connections",
                "Requests currently being handled.",
            ),
            open_connections: reg.gauge(
                "relgo_http_open_connections",
                "TCP connections currently open (idle keep-alive included).",
            ),
            keepalive_reuses: reg.counter(
                "relgo_http_keepalive_reuses_total",
                "Requests served over an already-used persistent connection.",
            ),
            deadline_expirations: reg.counter(
                "relgo_http_deadline_expirations_total",
                "Requests aborted because their execution deadline expired.",
            ),
            rejections: reg.counter(
                "relgo_http_admission_rejections_total",
                "Requests rejected by per-tenant admission control or row budgets.",
            ),
            rows_served: reg.counter(
                "relgo_http_rows_served_total",
                "Result rows written back to clients.",
            ),
        }
    }
}

/// A pinned prepared statement plus the template whose binding generator
/// feeds its `draw` parameter on `/execute`.
struct StmtEntry<'s> {
    stmt: Arc<PreparedStatement<'s>>,
    template_idx: usize,
}

/// Everything the worker threads share for one server run.
struct Shared<'s> {
    session: &'s Session,
    templates: &'s [QueryTemplate],
    config: &'s ServerConfig,
    shutdown: AtomicBool,
    statements: Mutex<HashMap<u64, StmtEntry<'s>>>,
    next_stmt: AtomicU64,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    metrics: EdgeMetrics,
    access_log: Option<Mutex<std::fs::File>>,
    connections: AtomicU64,
    requests: AtomicU64,
    ok_responses: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
}

impl<'s> Shared<'s> {
    fn new(
        session: &'s Session,
        templates: &'s [QueryTemplate],
        config: &'s ServerConfig,
    ) -> Result<Shared<'s>> {
        let access_log = match &config.access_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| RelGoError::execution(format!("open access log {path}: {e}")))?,
            )),
            None => None,
        };
        Ok(Shared {
            session,
            templates,
            config,
            shutdown: AtomicBool::new(false),
            statements: Mutex::new(HashMap::new()),
            next_stmt: AtomicU64::new(1),
            tenants: Mutex::new(HashMap::new()),
            metrics: EdgeMetrics::new(session),
            access_log,
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            ok_responses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        })
    }

    fn tenant(&self, name: &str) -> Arc<Tenant> {
        let mut tenants = self.tenants.lock().expect("tenants lock");
        Arc::clone(tenants.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Tenant {
                inflight: AtomicUsize::new(0),
                budget: RowBudget::new(self.config.tenant_row_budget),
            })
        }))
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            ok_responses: self.ok_responses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }

    /// Append one JSON line to the access log (no-op when disabled).
    fn log_access(&self, line: &str) {
        if let Some(log) = &self.access_log {
            let mut file = log.lock().expect("access log lock");
            // One write per line: the mutex orders writers, a single
            // write_all keeps lines unsplit under concurrency.
            let _ = file.write_all(format!("{line}\n").as_bytes());
        }
    }
}

/// Decrements the owning tenant's in-flight count on drop, so every
/// admission exit path releases the slot.
struct AdmissionGuard {
    tenant: Arc<Tenant>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

fn admit(shared: &Shared<'_>, tenant_name: &str) -> std::result::Result<AdmissionGuard, ()> {
    let tenant = shared.tenant(tenant_name);
    let prior = tenant.inflight.fetch_add(1, Ordering::AcqRel);
    if prior >= shared.config.max_inflight_per_tenant {
        tenant.inflight.fetch_sub(1, Ordering::AcqRel);
        return Err(());
    }
    Ok(AdmissionGuard { tenant })
}

fn worker_loop(listener: TcpListener, shared: &Shared<'_>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::Acquire) {
                    // The backlog is empty *and* the flag is up: nothing
                    // accepted can still be waiting, so drain is complete.
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

/// The routable endpoints (also the `endpoint` label values of the HTTP
/// edge metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Query,
    Prepare,
    Execute,
    Unprepare,
    Explain,
    Ingest,
    Checkpoint,
    Metrics,
    Healthz,
    Shutdown,
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 11] = [
        Endpoint::Query,
        Endpoint::Prepare,
        Endpoint::Execute,
        Endpoint::Unprepare,
        Endpoint::Explain,
        Endpoint::Ingest,
        Endpoint::Checkpoint,
        Endpoint::Metrics,
        Endpoint::Healthz,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    fn name(self) -> &'static str {
        match self {
            Endpoint::Query => "query",
            Endpoint::Prepare => "prepare",
            Endpoint::Execute => "execute",
            Endpoint::Unprepare => "unprepare",
            Endpoint::Explain => "explain",
            Endpoint::Ingest => "ingest",
            Endpoint::Checkpoint => "checkpoint",
            Endpoint::Metrics => "metrics",
            Endpoint::Healthz => "healthz",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn idx(self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| *e == self)
            .expect("known endpoint")
    }
}

/// One parsed request: method, bare path, decoded query params, body, and
/// the connection semantics the client asked for.
struct Request {
    method: String,
    path: String,
    params: HashMap<String, String>,
    body: String,
    /// Whether the client allows the connection to persist after this
    /// request (HTTP/1.1 default; `Connection: close` or bare HTTP/1.0
    /// opt out, `Connection: keep-alive` opts HTTP/1.0 back in).
    keep_alive: bool,
}

impl Request {
    fn param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    fn tenant(&self) -> &str {
        self.param("tenant").unwrap_or("default")
    }
}

/// A response about to be written: status plus plain-text body, an
/// optional `Retry-After` delay (seconds) for retryable rejections, and
/// bookkeeping the access log and connection loop read back.
struct Response {
    status: u16,
    body: String,
    retry_after: Option<u64>,
    /// The stream position can no longer be trusted (framing error):
    /// close the connection after this response regardless of keep-alive.
    close: bool,
    /// Result rows the response carries (access-log field).
    rows: usize,
    /// Per-stage query timings when the endpoint executed one
    /// (access-log `stages` field). Boxed to keep `Response` small enough
    /// to travel as the `Err` arm of the parameter-parsing helpers.
    stages: Option<Box<StageTimings>>,
    /// The per-operator profile (pre-rendered [`PlanReport::to_json`])
    /// when the endpoint executed with profiling armed; the access log
    /// attaches it to over-threshold (slow) requests.
    profile: Option<String>,
}

impl Response {
    fn ok(body: String) -> Response {
        Response {
            status: 200,
            body,
            retry_after: None,
            close: false,
            rows: 0,
            stages: None,
            profile: None,
        }
    }

    fn err(status: u16, msg: impl std::fmt::Display) -> Response {
        Response {
            status,
            body: format!("error: {msg}\n"),
            retry_after: None,
            close: false,
            rows: 0,
            stages: None,
            profile: None,
        }
    }

    /// `err`, advertising that the same request may succeed if repeated
    /// after `seconds` (sets the standard `Retry-After` header).
    fn retryable(status: u16, msg: impl std::fmt::Display, seconds: u64) -> Response {
        Response {
            retry_after: Some(seconds),
            ..Response::err(status, msg)
        }
    }

    /// `err` that also poisons the connection (framing errors).
    fn fatal(status: u16, msg: impl std::fmt::Display) -> Response {
        Response {
            close: true,
            ..Response::err(status, msg)
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serve one connection to completion: a keep-alive request loop. Each
/// iteration reads one request off the shared buffered reader (pipelined
/// bytes survive between iterations), dispatches it, decides whether the
/// connection persists, and answers with the decision in the `Connection`
/// header. The loop ends on client close, idle timeout, the per-connection
/// request cap, a framing error, or drain (the in-flight request finishes,
/// then the connection closes).
fn handle_connection(stream: TcpStream, shared: &Shared<'_>) {
    let conn_id = shared.connections.fetch_add(1, Ordering::Relaxed) + 1;
    shared.metrics.open_connections.add(1);
    // Request/response exchanges are latency-bound, not throughput-bound:
    // never trade a delayed-ACK round trip for packet coalescing.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(&stream);
    let mut seq: u64 = 0;
    loop {
        // The idle timeout governs the quiet gap before the next request
        // line; once bytes flow, read_request tightens it to READ_TIMEOUT.
        let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
        let start = Instant::now();
        let (req, endpoint, response) = match read_request(&mut reader, &stream, shared.config) {
            ReadOutcome::Closed => break,
            ReadOutcome::Bad(response) => (None, Endpoint::Other, response),
            ReadOutcome::Request(req) => {
                let endpoint = route(&req);
                shared.metrics.active.add(1);
                let response = dispatch(endpoint, &req, shared);
                shared.metrics.active.add(-1);
                (Some(req), endpoint, response)
            }
        };
        seq += 1;
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if seq > 1 {
            shared.metrics.keepalive_reuses.inc();
        }
        let keep_alive = !response.close
            && req.as_ref().is_some_and(|r| r.keep_alive)
            && seq < shared.config.max_requests_per_connection as u64
            && !shared.shutdown.load(Ordering::Acquire);
        match response.status {
            200 => shared.ok_responses.fetch_add(1, Ordering::Relaxed),
            429 => shared.rejected.fetch_add(1, Ordering::Relaxed),
            _ => shared.failed.fetch_add(1, Ordering::Relaxed),
        };
        // Count *before* writing: once a client holds response N, any
        // scrape it takes next must already include N (a /metrics body
        // itself is rendered pre-increment, so a scrape never counts
        // itself).
        shared.metrics.requests[endpoint.idx()].inc();
        let elapsed = start.elapsed();
        shared.metrics.latency[endpoint.idx()].record(elapsed);
        let slow = shared
            .config
            .slow_query_ms
            .is_some_and(|ms| elapsed >= Duration::from_millis(ms));
        shared.log_access(&access_log_line(
            req.as_ref(),
            &response,
            endpoint,
            conn_id,
            seq,
            elapsed,
            slow,
        ));
        write_response(&stream, &response, keep_alive);
        if !keep_alive {
            break;
        }
    }
    shared.metrics.open_connections.add(-1);
}

/// What one attempt to read a request off a persistent connection yielded.
enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// Nothing to serve: the client closed (or idled out) between
    /// requests. No response is owed; the connection just closes.
    Closed,
    /// A malformed request: answer with this response, then close (the
    /// stream position is untrustworthy after a framing error).
    Bad(Response),
}

/// How one capped header-line read ended.
enum LineRead {
    Line,
    Eof,
    TooLong,
}

/// Read one `\n`-terminated line, charging its bytes against the
/// remaining per-request header budget. A line that would overrun the
/// budget stops reading early and reports [`LineRead::TooLong`] — the
/// unbounded `read_line`-into-`String` this replaces let a client
/// streaming an endless header OOM the worker.
fn read_header_line(
    reader: &mut BufReader<&TcpStream>,
    line: &mut String,
    budget: &mut usize,
) -> std::io::Result<LineRead> {
    // +1 so a line using the exact remaining budget is distinguishable
    // from one that overruns it.
    let cap = (*budget as u64).saturating_add(1);
    let n = reader.by_ref().take(cap).read_line(line)?;
    if n > *budget {
        return Ok(LineRead::TooLong);
    }
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    *budget -= n;
    Ok(LineRead::Line)
}

/// Parse one request off the connection's buffered reader. Framing is
/// strict because a persistent connection must stay byte-synchronized:
/// header bytes are capped (`431` past `max_header_bytes`),
/// `Content-Length` must parse and appear at most once (`400` otherwise —
/// the old `unwrap_or(0)` would desynchronize every later request on the
/// connection), an oversized declared body is `413` *before* any buffer
/// is allocated, and query-string percent-escapes must decode to valid
/// UTF-8 (`400`).
fn read_request(
    reader: &mut BufReader<&TcpStream>,
    stream: &TcpStream,
    config: &ServerConfig,
) -> ReadOutcome {
    let mut header_budget = config.max_header_bytes;
    let mut line = String::new();
    match read_header_line(reader, &mut line, &mut header_budget) {
        Ok(LineRead::Line) => {}
        // EOF, idle timeout, or any transport error before a request
        // line: nobody is waiting for a response.
        Ok(LineRead::Eof) | Err(_) => return ReadOutcome::Closed,
        Ok(LineRead::TooLong) => {
            return ReadOutcome::Bad(Response::fatal(
                431,
                format!(
                    "request line exceeds the {}-byte header limit",
                    config.max_header_bytes
                ),
            ))
        }
    }
    // A request is in flight: the stalled-client timeout takes over from
    // the (typically longer) idle timeout.
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("HTTP/1.1").to_string();
    if method.is_empty() || !target.starts_with('/') {
        return ReadOutcome::Bad(Response::fatal(400, "malformed request line"));
    }
    let mut content_length: Option<usize> = None;
    let mut connection: Option<String> = None;
    loop {
        line.clear();
        match read_header_line(reader, &mut line, &mut header_budget) {
            Ok(LineRead::Line) => {}
            Ok(LineRead::Eof) => {
                return ReadOutcome::Bad(Response::fatal(400, "connection closed mid-headers"))
            }
            Ok(LineRead::TooLong) => {
                return ReadOutcome::Bad(Response::fatal(
                    431,
                    format!("headers exceed the {}-byte limit", config.max_header_bytes),
                ))
            }
            Err(e) => return ReadOutcome::Bad(Response::fatal(400, e)),
        }
        let header = line.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let parsed: usize = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return ReadOutcome::Bad(Response::fatal(
                            400,
                            format!("malformed Content-Length {:?}", value.trim()),
                        ))
                    }
                };
                if content_length.replace(parsed).is_some() {
                    return ReadOutcome::Bad(Response::fatal(
                        400,
                        "duplicate Content-Length header",
                    ));
                }
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > config.max_body_bytes {
        return ReadOutcome::Bad(Response::fatal(
            413,
            format!(
                "body of {content_length} bytes exceeds the {}-byte limit",
                config.max_body_bytes
            ),
        ));
    }
    let mut body = vec![0u8; content_length];
    if let Err(e) = reader.read_exact(&mut body) {
        return ReadOutcome::Bad(Response::fatal(400, e));
    }
    let body = match String::from_utf8(body) {
        Ok(b) => b,
        Err(_) => return ReadOutcome::Bad(Response::fatal(400, "non-UTF-8 request body")),
    };
    let (path, params) = match target.split_once('?') {
        Some((p, q)) => match parse_query_params(q) {
            Ok(params) => (p.to_string(), params),
            Err(e) => return ReadOutcome::Bad(Response::fatal(400, e)),
        },
        None => (target, HashMap::new()),
    };
    // HTTP/1.1 persists by default; `close` opts out, and bare HTTP/1.0
    // opts out unless the client sends `keep-alive`.
    let keep_alive = match connection.as_deref() {
        Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
        Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
        _ => version != "HTTP/1.0",
    };
    ReadOutcome::Request(Request {
        method,
        path,
        params,
        body,
        keep_alive,
    })
}

fn parse_query_params(q: &str) -> Result<HashMap<String, String>> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => Ok((wire::percent_decode(k)?, wire::percent_decode(v)?)),
            None => Ok((wire::percent_decode(kv)?, String::new())),
        })
        .collect()
}

fn response_head(response: &Response, keep_alive: bool) -> String {
    let retry_after = response
        .retry_after
        .map(|s| format!("Retry-After: {s}\r\n"))
        .unwrap_or_default();
    let connection = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\n{retry_after}Connection: {connection}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.body.len()
    )
}

fn write_response(mut stream: &TcpStream, response: &Response, keep_alive: bool) {
    // One write per response: separate head/body writes would let Nagle
    // hold the body packet for the client's delayed ACK (~40ms per
    // request) on a persistent connection, where no close flushes it.
    let mut payload = response_head(response, keep_alive);
    payload.push_str(&response.body);
    // A client that hung up early is its own problem; the write result
    // only matters to it, not to the server loop.
    let _ = stream
        .write_all(payload.as_bytes())
        .and_then(|()| stream.flush());
}

/// Render one JSON access-log line. Hand-rolled (the vendored serde is a
/// no-op shim), so strings pass through [`json_escape`]. With `slow` set
/// (the request reached [`ServerConfig::slow_query_ms`]) and a profile on
/// the response, the line carries the full per-operator profile.
fn access_log_line(
    req: Option<&Request>,
    response: &Response,
    endpoint: Endpoint,
    conn_id: u64,
    seq: u64,
    elapsed: Duration,
    slow: bool,
) -> String {
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let mut line = String::with_capacity(192);
    line.push_str(&format!(
        "{{\"unix_ms\":{unix_ms},\"conn\":{conn_id},\"seq\":{seq},\"tenant\":\""
    ));
    json_escape(req.map_or("-", |r| r.tenant()), &mut line);
    line.push_str("\",\"endpoint\":\"");
    line.push_str(endpoint.name());
    line.push_str("\",\"method\":\"");
    json_escape(req.map_or("-", |r| &r.method), &mut line);
    line.push_str("\",\"path\":\"");
    json_escape(req.map_or("-", |r| &r.path), &mut line);
    line.push_str(&format!(
        "\",\"status\":{},\"rows\":{},\"micros\":{}",
        response.status,
        response.rows,
        elapsed.as_micros()
    ));
    if let Some(stages) = &response.stages {
        line.push_str(",\"stages\":{");
        for (i, (stage, d)) in stages.nonzero().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{}", stage.name(), d.as_micros()));
        }
        line.push('}');
    }
    if slow {
        line.push_str(",\"slow\":true");
        if let Some(profile) = &response.profile {
            // Already-valid JSON (PlanReport::to_json): splice verbatim.
            line.push_str(",\"profile\":");
            line.push_str(profile);
        }
    }
    line.push('}');
    line
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn route(req: &Request) -> Endpoint {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => Endpoint::Query,
        ("POST", "/prepare") => Endpoint::Prepare,
        ("POST", "/execute") => Endpoint::Execute,
        ("POST", "/unprepare") => Endpoint::Unprepare,
        ("POST", "/explain") => Endpoint::Explain,
        ("POST", "/ingest") => Endpoint::Ingest,
        ("POST", "/checkpoint") => Endpoint::Checkpoint,
        ("GET", "/metrics") => Endpoint::Metrics,
        ("GET", "/healthz") => Endpoint::Healthz,
        ("POST", "/shutdown") => Endpoint::Shutdown,
        _ => Endpoint::Other,
    }
}

fn dispatch(endpoint: Endpoint, req: &Request, shared: &Shared<'_>) -> Response {
    match endpoint {
        Endpoint::Healthz => {
            let mut body = format!("ok epoch={}", shared.session.epoch());
            if let Some(bytes) = shared.session.wal_bytes_since_checkpoint() {
                body.push_str(&format!(" wal_bytes_since_checkpoint={bytes}"));
            }
            body.push('\n');
            Response::ok(body)
        }
        Endpoint::Metrics => {
            Response::ok(shared.session.observability_snapshot().render_prometheus())
        }
        Endpoint::Shutdown => {
            // The response is written by the caller *after* dispatch
            // returns, before this worker re-checks the flag — so the
            // shutdown client itself always gets its acknowledgement.
            shared.shutdown.store(true, Ordering::Release);
            Response::ok("ok draining\n".to_string())
        }
        Endpoint::Query => with_admission(req, shared, handle_query),
        Endpoint::Prepare => with_admission(req, shared, handle_prepare),
        Endpoint::Execute => with_admission(req, shared, handle_execute),
        Endpoint::Unprepare => handle_unprepare(req, shared),
        Endpoint::Explain => with_admission(req, shared, handle_explain),
        Endpoint::Ingest => with_admission(req, shared, handle_ingest),
        // Admission-exempt like /shutdown: an operator must be able to
        // checkpoint a session whose tenants have saturated their gates.
        Endpoint::Checkpoint => handle_checkpoint(shared),
        Endpoint::Other => Response::err(404, format!("no route {} {}", req.method, req.path)),
    }
}

/// Run `f` under the request tenant's admission gate; a full gate is a
/// `429` and a rejection metric, never a queue.
fn with_admission(
    req: &Request,
    shared: &Shared<'_>,
    f: fn(&Request, &Shared<'_>, &AdmissionGuard) -> Response,
) -> Response {
    match admit(shared, req.tenant()) {
        Ok(guard) => f(req, shared, &guard),
        Err(()) => {
            shared.metrics.rejections.inc();
            Response::err(429, format!("tenant {} at inflight limit", req.tenant()))
        }
    }
}

fn parse_mode(name: &str) -> Option<OptimizerMode> {
    OptimizerMode::ALL.into_iter().find(|m| m.name() == name)
}

fn lookup_template<'t>(
    templates: &'t [QueryTemplate],
    req: &Request,
) -> std::result::Result<(usize, &'t QueryTemplate), Response> {
    let name = req
        .param("template")
        .ok_or_else(|| Response::err(400, "missing template parameter"))?;
    templates
        .iter()
        .enumerate()
        .find(|(_, t)| t.name() == name)
        .ok_or_else(|| Response::err(400, format!("unknown template {name}")))
}

fn parse_draw(req: &Request) -> std::result::Result<u64, Response> {
    req.param("draw")
        .ok_or_else(|| Response::err(400, "missing draw parameter"))?
        .parse()
        .map_err(|_| Response::err(400, "draw must be a non-negative integer"))
}

fn parse_mode_param(req: &Request) -> std::result::Result<OptimizerMode, Response> {
    match req.param("mode") {
        None => Ok(OptimizerMode::RelGo),
        Some(m) => {
            parse_mode(m).ok_or_else(|| Response::err(400, format!("unknown optimizer mode {m}")))
        }
    }
}

/// Resolve this request's execution deadline: the `deadline_ms` query
/// parameter wins, else the server-wide default, else unbounded. The
/// [`TimeBudget`] starts *here* — queueing, planning and cache probes all
/// count against it, matching what the client actually experiences.
fn parse_deadline(
    req: &Request,
    shared: &Shared<'_>,
) -> std::result::Result<Option<TimeBudget>, Response> {
    let ms = match req.param("deadline_ms") {
        Some(raw) => Some(raw.parse::<u64>().map_err(|_| {
            Response::err(
                400,
                "deadline_ms must be a non-negative integer of milliseconds",
            )
        })?),
        None => shared.config.default_deadline_ms,
    };
    Ok(ms.map(|ms| TimeBudget::new(Duration::from_millis(ms))))
}

/// `Retry-After` advertised on deadline expiries: the query is retryable
/// immediately with a longer (or absent) deadline, so advertise the
/// minimum representable delay.
const DEADLINE_RETRY_AFTER_SECS: u64 = 1;

/// Map an engine error onto an HTTP response. A deadline expiry is the
/// *client's* budget running out, not a server fault: `503` with
/// `Retry-After` (and a metric), keeping the connection alive. Anything
/// else stays a `500`.
fn engine_error(e: RelGoError, shared: &Shared<'_>) -> Response {
    match e {
        RelGoError::DeadlineExceeded(_) => {
            shared.metrics.deadline_expirations.inc();
            Response::retryable(503, e, DEADLINE_RETRY_AFTER_SECS)
        }
        e => Response::err(500, e),
    }
}

/// Serialize a query outcome: meta line, then one wire-encoded row per
/// line. Charges the tenant's row budget first — a budget-exhausted
/// tenant gets a `429` instead of rows. The serialization wall time is
/// charged to the trace's `serialize` stage (and the session's stage
/// histogram), so trace coverage includes the response-building edge.
///
/// With `profile` set, the response carries the per-operator profile for
/// the slow-query log; when the client asked for it (`profile=1`,
/// `tail` true) the same JSON is appended as the body's final line.
fn render_outcome(
    outcome: &QueryOutcome,
    mode: OptimizerMode,
    shared: &Shared<'_>,
    guard: &AdmissionGuard,
    profile: Option<(&PlanReport, bool)>,
) -> Response {
    let rows = outcome.table.num_rows();
    if guard.tenant.budget.charge(rows).is_err() {
        shared.metrics.rejections.inc();
        return Response::err(429, "tenant row budget exhausted");
    }
    shared.metrics.rows_served.add(rows as u64);
    let ser_start = Instant::now();
    let mut body = format!(
        "ok rows={rows} cached={} epoch={} mode={}\n",
        outcome.cached,
        shared.session.epoch(),
        mode.name()
    );
    for r in 0..rows {
        body.push_str(&wire::encode_row(&outcome.table.row(r as u32)));
        body.push('\n');
    }
    let json = profile.map(|(report, tail)| (report.to_json(), tail));
    if let Some((json, true)) = &json {
        // The profile rides as the body's last line, pure JSON — clients
        // (and the CI smoke) can `tail -1 | jq` it off the wire format.
        body.push_str(json);
        body.push('\n');
    }
    let ser = ser_start.elapsed();
    shared.session.metrics().record_stage(Stage::Serialize, ser);
    let mut trace = outcome.trace;
    trace.add(Stage::Serialize, ser);
    let mut response = Response::ok(body);
    response.rows = rows;
    response.stages = Some(Box::new(trace));
    response.profile = json.map(|(json, _)| json);
    response
}

fn handle_query(req: &Request, shared: &Shared<'_>, guard: &AdmissionGuard) -> Response {
    let (_, template) = match lookup_template(shared.templates, req) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let draw = match parse_draw(req) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let mode = match parse_mode_param(req) {
        Ok(m) => m,
        Err(r) => return r,
    };
    let deadline = match parse_deadline(req, shared) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let query = match template.instantiate(draw) {
        Ok(q) => q,
        Err(e) => return Response::err(400, e),
    };
    if let Some(want_tail) = profile_armed(req, shared) {
        return match shared.session.run_cached_profiled(&query, mode, deadline) {
            Ok((outcome, report)) => {
                render_outcome(&outcome, mode, shared, guard, Some((&report, want_tail)))
            }
            Err(e) => engine_error(e, shared),
        };
    }
    match shared
        .session
        .run_cached_with_deadline(&query, mode, deadline)
    {
        Ok(outcome) => render_outcome(&outcome, mode, shared, guard, None),
        Err(e) => engine_error(e, shared),
    }
}

/// Whether this request executes with operator profiling armed, and if so
/// whether the client asked for the profile back (`profile=1`). A
/// configured slow-query threshold arms profiling on every query (else an
/// over-threshold query would have no profile to log); the JSON tail is
/// only sent when explicitly requested.
fn profile_armed(req: &Request, shared: &Shared<'_>) -> Option<bool> {
    let want_tail = req.param("profile").is_some_and(|v| v == "1");
    (want_tail || shared.config.slow_query_ms.is_some()).then_some(want_tail)
}

fn handle_prepare(req: &Request, shared: &Shared<'_>, _guard: &AdmissionGuard) -> Response {
    let (template_idx, template) = match lookup_template(shared.templates, req) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let mode = match parse_mode_param(req) {
        Ok(m) => m,
        Err(r) => return r,
    };
    // Any instance parameterizes to the template's plan-cache key; draw 0
    // is as good a representative as any.
    let query = match template.instantiate(0) {
        Ok(q) => q,
        Err(e) => return Response::err(400, e),
    };
    let stmt = match shared.session.prepare(&query, mode) {
        Ok(s) => Arc::new(s),
        Err(e) => return Response::err(500, e),
    };
    let id = shared.next_stmt.fetch_add(1, Ordering::Relaxed);
    // Cap check and insert under one lock acquisition, so concurrent
    // prepares cannot overshoot the cap between a check and an insert.
    let mut statements = shared.statements.lock().expect("statements lock");
    if statements.len() >= shared.config.max_prepared_statements {
        drop(statements);
        shared.metrics.rejections.inc();
        return Response::err(
            429,
            format!(
                "prepared-statement cap ({}) reached; release handles via POST /unprepare",
                shared.config.max_prepared_statements
            ),
        );
    }
    statements.insert(id, StmtEntry { stmt, template_idx });
    Response::ok(format!("ok stmt={id}\n"))
}

/// Release a prepared handle: drops the pinned plan (once no in-flight
/// `/execute` still holds its clone) and frees a cap slot.
fn handle_unprepare(req: &Request, shared: &Shared<'_>) -> Response {
    let id: u64 = match req.param("stmt").map(str::parse) {
        Some(Ok(id)) => id,
        _ => return Response::err(400, "missing or malformed stmt parameter"),
    };
    match shared
        .statements
        .lock()
        .expect("statements lock")
        .remove(&id)
    {
        Some(_) => Response::ok(format!("ok unprepared={id}\n")),
        None => Response::err(400, format!("unknown statement {id}")),
    }
}

fn handle_execute(req: &Request, shared: &Shared<'_>, guard: &AdmissionGuard) -> Response {
    let id: u64 = match req.param("stmt").map(str::parse) {
        Some(Ok(id)) => id,
        _ => return Response::err(400, "missing or malformed stmt parameter"),
    };
    let deadline = match parse_deadline(req, shared) {
        Ok(d) => d,
        Err(r) => return r,
    };
    // Clone the handle out so execution never holds the statements lock.
    let (stmt, template_idx) = {
        let statements = shared.statements.lock().expect("statements lock");
        match statements.get(&id) {
            Some(e) => (Arc::clone(&e.stmt), e.template_idx),
            None => return Response::err(400, format!("unknown statement {id}")),
        }
    };
    // Bindings come from exactly one of two places: client-supplied
    // wire-tagged values (`bind=i:42|s:x`, the `|`/`%` wire-escaped then
    // URL-escaped — the query-param decode already stripped the URL
    // layer), or the template's deterministic generator (`draw=N`).
    let bindings = match (req.param("bind"), req.param("draw")) {
        (Some(_), Some(_)) => {
            return Response::err(400, "bind and draw are mutually exclusive");
        }
        (Some(row), None) => match wire::decode_row(row) {
            Ok(b) => b,
            Err(e) => return Response::err(400, format!("malformed bind row: {e}")),
        },
        (None, _) => match parse_draw(req) {
            Ok(draw) => match shared.templates[template_idx].bindings(draw) {
                Ok(b) => b,
                Err(e) => return Response::err(400, e),
            },
            Err(r) => return r,
        },
    };
    // validate_bindings runs inside execute_with_deadline, so a
    // wrong-arity or wrong-type bind row surfaces as a typed error here.
    if let Some(want_tail) = profile_armed(req, shared) {
        return match stmt.execute_profiled(&bindings, deadline) {
            Ok((outcome, report)) => render_outcome(
                &outcome,
                stmt.mode(),
                shared,
                guard,
                Some((&report, want_tail)),
            ),
            Err(e) => match e {
                RelGoError::DeadlineExceeded(_) => engine_error(e, shared),
                RelGoError::Query(_) | RelGoError::Schema(_) => Response::err(400, e),
                e => Response::err(500, e),
            },
        };
    }
    match stmt.execute_with_deadline(&bindings, deadline) {
        Ok(outcome) => render_outcome(&outcome, stmt.mode(), shared, guard, None),
        Err(e) => match e {
            RelGoError::DeadlineExceeded(_) => engine_error(e, shared),
            RelGoError::Query(_) | RelGoError::Schema(_) => Response::err(400, e),
            e => Response::err(500, e),
        },
    }
}

/// `POST /explain?template=NAME&draw=N[&mode=M][&analyze=0]`: optimize the
/// instantiated query and return the rendered plan tree. The default is
/// EXPLAIN ANALYZE — the query executes with operator profiling and each
/// line carries `est`/`act` rows and the operator's Q-error; `analyze=0`
/// skips execution and annotates estimates only. The tree rides after an
/// `ok ops=N analyze=B mode=M` meta line; result rows are never returned
/// (so the tenant row budget is not charged), but the executed variant
/// still runs under the admission gate.
fn handle_explain(req: &Request, shared: &Shared<'_>, _guard: &AdmissionGuard) -> Response {
    let (_, template) = match lookup_template(shared.templates, req) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let draw = match parse_draw(req) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let mode = match parse_mode_param(req) {
        Ok(m) => m,
        Err(r) => return r,
    };
    let query = match template.instantiate(draw) {
        Ok(q) => q,
        Err(e) => return Response::err(400, e),
    };
    if req.param("analyze") == Some("0") {
        return match shared.session.explain(&query, mode) {
            Ok(rendered) => Response::ok(format!(
                "ok ops={} analyze=0 mode={}\n{rendered}",
                rendered.lines().count(),
                mode.name()
            )),
            Err(e) => engine_error(e, shared),
        };
    }
    match shared.session.explain_analyze(&query, mode) {
        Ok(ea) => {
            let body = format!(
                "ok ops={} analyze=1 mode={}\n{}",
                ea.report.ops.len(),
                mode.name(),
                ea.rendered
            );
            let mut response = Response::ok(body);
            response.stages = Some(Box::new(ea.outcome.trace));
            response.profile = Some(ea.report.to_json());
            response
        }
        Err(e) => engine_error(e, shared),
    }
}

fn handle_ingest(req: &Request, shared: &Shared<'_>, _guard: &AdmissionGuard) -> Response {
    let mut batch = shared.session.begin_ingest();
    for (lineno, line) in req.body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Err(e) = wire::apply_ingest_line(&mut batch, line) {
            return Response::err(400, format!("line {}: {e}", lineno + 1));
        }
    }
    match batch.commit() {
        Ok(report) => {
            let mut response = Response::ok(format!(
                "ok epoch={} inserted={} deleted={}\n",
                report.epoch, report.inserted, report.deleted
            ));
            // Surface WAL durability time in the access log's stage
            // breakdown (zero on in-memory sessions stays omitted —
            // `nonzero()` filters it).
            let mut stages = StageTimings::default();
            stages.add(Stage::WalAppend, report.wal_time);
            response.stages = Some(Box::new(stages));
            response
        }
        Err(CommitError::Conflict { table, key, .. }) => Response::retryable(
            409,
            format!("write-write conflict on {table} key {key}"),
            INGEST_RETRY_AFTER_SECS,
        ),
        Err(CommitError::StaleBase { base_epoch, .. }) => Response::retryable(
            409,
            format!("base epoch {base_epoch} predates the retained commit log"),
            INGEST_RETRY_AFTER_SECS,
        ),
        Err(CommitError::Failed(e)) => Response::err(400, e),
    }
}

/// `Retry-After` advertised on lost `/ingest` commit races. The conflict
/// window is one group-commit, so the smallest representable HTTP delay
/// (seconds are the unit) is already generous.
const INGEST_RETRY_AFTER_SECS: u64 = 1;

/// `POST /checkpoint`: snapshot the current epoch next to the WAL and
/// compact the log behind it (see [`Session::checkpoint`]). `400` on an
/// in-memory session — there is no log to bound.
fn handle_checkpoint(shared: &Shared<'_>) -> Response {
    if !shared.session.is_durable() {
        return Response::err(400, "session is not durable (no WAL to checkpoint)");
    }
    match shared.session.checkpoint() {
        Ok(report) => Response::ok(format!(
            "ok checkpoint epoch={} bytes={} wal_records_dropped={} wal_bytes_retained={}\n",
            report.epoch, report.bytes, report.wal.records_dropped, report.wal.bytes_retained
        )),
        Err(e) => Response::err(500, e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_names_are_distinct_labels() {
        let mut names: Vec<&str> = Endpoint::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Endpoint::ALL.len());
    }

    #[test]
    fn query_param_parsing_decodes() {
        let params = parse_query_params("template=IC1-2&draw=5&tenant=team%20a&flag").unwrap();
        assert_eq!(params.get("template").unwrap(), "IC1-2");
        assert_eq!(params.get("draw").unwrap(), "5");
        assert_eq!(params.get("tenant").unwrap(), "team a");
        assert_eq!(params.get("flag").unwrap(), "");
    }

    #[test]
    fn query_params_reject_invalid_utf8_escapes() {
        let err = parse_query_params("tenant=%FF").unwrap_err();
        assert!(err.to_string().contains("invalid UTF-8"), "{err}");
    }

    #[test]
    fn retryable_responses_carry_a_retry_after_header() {
        let head = response_head(&Response::retryable(409, "conflict", 1), true);
        assert!(head.contains("HTTP/1.1 409 Conflict\r\n"), "{head}");
        assert!(head.contains("\r\nRetry-After: 1\r\n"), "{head}");
        let head = response_head(&Response::err(400, "bad"), true);
        assert!(!head.contains("Retry-After"), "{head}");
        let head = response_head(&Response::ok("ok\n".to_string()), true);
        assert!(!head.contains("Retry-After"), "{head}");
    }

    #[test]
    fn response_head_advertises_the_connection_decision() {
        let keep = response_head(&Response::ok("ok\n".to_string()), true);
        assert!(keep.contains("\r\nConnection: keep-alive\r\n"), "{keep}");
        let close = response_head(&Response::ok("ok\n".to_string()), false);
        assert!(close.contains("\r\nConnection: close\r\n"), "{close}");
    }

    #[test]
    fn access_log_lines_are_json_with_escaped_strings() {
        let mut req = Request {
            method: "POST".to_string(),
            path: "/query".to_string(),
            params: HashMap::new(),
            body: String::new(),
            keep_alive: true,
        };
        req.params
            .insert("tenant".to_string(), "team \"a\"\\b".to_string());
        let mut response = Response::ok("ok\n".to_string());
        response.rows = 7;
        let line = access_log_line(
            Some(&req),
            &response,
            Endpoint::Query,
            3,
            2,
            Duration::from_micros(1500),
            false,
        );
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"conn\":3,\"seq\":2"), "{line}");
        assert!(
            line.contains("\"tenant\":\"team \\\"a\\\"\\\\b\""),
            "{line}"
        );
        assert!(line.contains("\"endpoint\":\"query\""), "{line}");
        assert!(
            line.contains("\"status\":200,\"rows\":7,\"micros\":1500"),
            "{line}"
        );
        assert!(!line.contains("\"slow\""), "{line}");
        // A slow request with a profile splices it into the line.
        let mut slow_resp = Response::ok("ok\n".to_string());
        slow_resp.profile = Some("[{\"op\":0,\"kind\":\"SCAN\"}]".to_string());
        let slow = access_log_line(
            Some(&req),
            &slow_resp,
            Endpoint::Query,
            3,
            3,
            Duration::from_millis(250),
            true,
        );
        assert!(
            slow.contains("\"slow\":true,\"profile\":[{\"op\":0,\"kind\":\"SCAN\"}]}"),
            "{slow}"
        );
        // A request that never parsed logs placeholder fields.
        let bad = access_log_line(
            None,
            &Response::fatal(431, "too big"),
            Endpoint::Other,
            1,
            1,
            Duration::ZERO,
            false,
        );
        assert!(bad.contains("\"tenant\":\"-\""), "{bad}");
        assert!(bad.contains("\"status\":431"), "{bad}");
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in OptimizerMode::ALL {
            assert_eq!(parse_mode(mode.name()), Some(mode));
        }
        assert_eq!(parse_mode("NoSuchOptimizer"), None);
    }
}
