//! The `relgo-server` binary: generate an LDBC-SNB-like dataset, open a
//! session over it, and serve the SNB interactive templates over HTTP.
//!
//! ```text
//! relgo-server [--sf 0.05] [--seed 42] [--addr 127.0.0.1:0] \
//!              [--workers 4] [--max-inflight 8] [--row-budget 10000000] \
//!              [--max-body-bytes 4194304] [--max-prepared 1024] \
//!              [--max-header-bytes 16384] [--idle-timeout-ms 5000] \
//!              [--max-requests-per-conn 1000] [--deadline-ms MS] \
//!              [--access-log PATH] [--slow-query-ms MS]
//! ```
//!
//! Prints exactly one line — `listening on http://ADDR` — once the
//! listener is bound (an ephemeral `:0` port resolves to the real one),
//! then blocks until a `POST /shutdown` drains it.

use relgo::prelude::*;
use relgo_server::{Server, ServerConfig};

struct Args {
    sf: f64,
    seed: u64,
    config: ServerConfig,
}

fn parse_args() -> Result<Args> {
    let mut args = Args {
        sf: 0.05,
        seed: 42,
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| RelGoError::query(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--sf" => args.sf = parse(&value("--sf")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--addr" => args.config.addr = value("--addr")?,
            "--workers" => args.config.workers = parse(&value("--workers")?)?,
            "--max-inflight" => {
                args.config.max_inflight_per_tenant = parse(&value("--max-inflight")?)?
            }
            "--row-budget" => args.config.tenant_row_budget = parse(&value("--row-budget")?)?,
            "--max-body-bytes" => args.config.max_body_bytes = parse(&value("--max-body-bytes")?)?,
            "--max-prepared" => {
                args.config.max_prepared_statements = parse(&value("--max-prepared")?)?
            }
            "--max-header-bytes" => {
                args.config.max_header_bytes = parse(&value("--max-header-bytes")?)?
            }
            "--idle-timeout-ms" => {
                args.config.idle_timeout =
                    std::time::Duration::from_millis(parse(&value("--idle-timeout-ms")?)?)
            }
            "--max-requests-per-conn" => {
                args.config.max_requests_per_connection = parse(&value("--max-requests-per-conn")?)?
            }
            "--deadline-ms" => {
                args.config.default_deadline_ms = Some(parse(&value("--deadline-ms")?)?)
            }
            "--access-log" => args.config.access_log = Some(value("--access-log")?),
            "--slow-query-ms" => {
                args.config.slow_query_ms = Some(parse(&value("--slow-query-ms")?)?)
            }
            other => return Err(RelGoError::query(format!("unknown flag {other}"))),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T> {
    s.parse()
        .map_err(|_| RelGoError::query(format!("malformed argument {s:?}")))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("relgo-server: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    let args = parse_args()?;
    let (session, schema) = Session::snb(args.sf, args.seed)?;
    let templates = relgo::workloads::templates::snb_templates(&schema);
    let bound = Server::new(&session, &templates, args.config).bind()?;
    // The single startup line is the binary's machine-readable contract:
    // the integration test and CI smoke parse the port out of it.
    println!("listening on http://{}", bound.local_addr());
    let stats = bound.run()?;
    eprintln!(
        "drained: {} requests over {} connections, {} ok, {} rejected, {} failed",
        stats.requests, stats.connections, stats.ok_responses, stats.rejected, stats.failed
    );
    Ok(())
}
