//! # relgo-pattern
//!
//! Pattern graphs and the combinatorial machinery behind the graph-aware
//! transformation of the paper (§3.1.2):
//!
//! * [`pattern::Pattern`] — connected, labeled pattern graphs `P(V, E)` with
//!   optional per-element predicates (the `(P, Ψ)` extension used by
//!   `FilterIntoMatchRule`);
//! * [`canonical::CanonCode`] — isomorphism-invariant canonical codes, the
//!   keys of the GLogue statistics store;
//! * [`decompose`] — vertex-subset algebra for decomposition trees:
//!   connected induced sub-patterns, complete-star detection, and the legal
//!   transitions (EXPAND / EXPAND_INTERSECT / binary join);
//! * [`search_space`] — exact plan-space counters for the graph-aware and
//!   graph-agnostic regimes (regenerates the paper's Fig. 4a).

pub mod canonical;
pub mod decompose;
pub mod pattern;
pub mod search_space;

pub use canonical::{canonical_code, canonical_form, CanonCode, CanonicalForm};
pub use decompose::VertexSet;
pub use pattern::{MatchSemantics, Pattern, PatternBuilder, PatternEdge, PatternVertex};
