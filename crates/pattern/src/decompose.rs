//! Vertex-subset algebra for decomposition trees (§3.1.2).
//!
//! The graph-aware transformation searches over decomposition trees whose
//! intermediate nodes are *connected induced sub-patterns* of `P` and whose
//! leaves (MMCs) are single vertices or complete stars. Because intermediate
//! nodes are induced, a sub-pattern is fully identified by its vertex set —
//! a `u16` bitmask ([`VertexSet`]).
//!
//! This module provides the subset primitives and enumerates the *legal
//! transitions* into a target subset:
//!
//! * **Expand** — add one vertex connected by exactly one pattern edge
//!   (physical `EXPAND_EDGE`+`GET_VERTEX`, Case II);
//! * **ExpandIntersect** — add one vertex connected by ≥ 2 edges, i.e. a
//!   complete star whose leaves all lie in the existing side (physical
//!   `EXPAND_INTERSECT`, Case III);
//! * **BinaryJoin** — join two overlapping connected induced sub-patterns
//!   (physical `HASH_JOIN` on common vertices/edges, Case I).

use crate::pattern::Pattern;

/// A set of pattern-vertex indices as a bitmask (patterns have ≤ 16
/// vertices).
pub type VertexSet = u16;

/// The set `{0, …, n-1}`.
#[inline]
pub fn full_set(n: usize) -> VertexSet {
    debug_assert!(n <= 16);
    if n == 16 {
        u16::MAX
    } else {
        (1u16 << n) - 1
    }
}

/// Whether `set` contains vertex `v`.
#[inline]
pub fn contains(set: VertexSet, v: usize) -> bool {
    set & (1 << v) != 0
}

/// `set ∪ {v}`.
#[inline]
pub fn insert(set: VertexSet, v: usize) -> VertexSet {
    set | (1 << v)
}

/// `set \ {v}`.
#[inline]
pub fn remove(set: VertexSet, v: usize) -> VertexSet {
    set & !(1 << v)
}

/// Iterate the vertex indices contained in `set`, ascending.
pub fn iter_vertices(set: VertexSet) -> impl Iterator<Item = usize> {
    (0..16).filter(move |&v| contains(set, v))
}

/// Number of vertices in `set`.
#[inline]
pub fn len(set: VertexSet) -> usize {
    set.count_ones() as usize
}

/// Indices of the pattern edges with *both* endpoints in `set` (the edge set
/// of the induced sub-pattern).
pub fn edges_within(p: &Pattern, set: VertexSet) -> Vec<usize> {
    p.edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| contains(set, e.src) && contains(set, e.dst))
        .map(|(i, _)| i)
        .collect()
}

/// Indices of the pattern edges between vertex `v` (∉ `set`) and `set`.
pub fn edges_between(p: &Pattern, set: VertexSet, v: usize) -> Vec<usize> {
    debug_assert!(!contains(set, v));
    p.edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            (e.src == v && contains(set, e.dst)) || (e.dst == v && contains(set, e.src))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Whether the sub-pattern induced by `set` is connected (single vertices
/// are connected; the empty set is not).
pub fn is_induced_connected(p: &Pattern, set: VertexSet) -> bool {
    let k = len(set);
    if k == 0 {
        return false;
    }
    if k == 1 {
        return true;
    }
    let start = iter_vertices(set).next().expect("non-empty");
    let mut seen: VertexSet = 1 << start;
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        for e in p.edges() {
            for (a, b) in [(e.src, e.dst), (e.dst, e.src)] {
                if a == v && contains(set, b) && !contains(seen, b) {
                    seen = insert(seen, b);
                    stack.push(b);
                }
            }
        }
    }
    seen == set
}

/// All non-empty vertex subsets whose induced sub-pattern is connected,
/// sorted by cardinality then value (DP evaluation order).
pub fn connected_induced_subsets(p: &Pattern) -> Vec<VertexSet> {
    let n = p.vertex_count();
    let all = full_set(n);
    let mut subsets: Vec<VertexSet> = (1..=all)
        .filter(|&s| s & !all == 0 && is_induced_connected(p, s))
        .collect();
    subsets.sort_by_key(|&s| (len(s), s));
    subsets
}

/// Extract the induced sub-pattern of `set` together with the vertex-index
/// mapping `old → new` (ascending order). Predicates are carried over.
pub fn sub_pattern(p: &Pattern, set: VertexSet) -> (Pattern, Vec<usize>) {
    use crate::pattern::PatternBuilder;
    let old_ids: Vec<usize> = iter_vertices(set).collect();
    let mut b = PatternBuilder::new();
    let mut new_of = vec![usize::MAX; p.vertex_count()];
    for (new, &old) in old_ids.iter().enumerate() {
        let idx = b.vertex(&format!("v{new}"), p.vertex(old).label);
        new_of[old] = idx;
        if let Some(pred) = &p.vertex(old).predicate {
            b.vertex_predicate(idx, pred.clone());
        }
    }
    for ei in edges_within(p, set) {
        let e = p.edge(ei);
        let new_e = b
            .edge(new_of[e.src], new_of[e.dst], e.label)
            .expect("endpoints are in the subset");
        if let Some(pred) = &e.predicate {
            b.edge_predicate(new_e, pred.clone());
        }
    }
    let sub = b.build().expect("caller must supply a connected subset");
    (sub, old_ids)
}

/// A legal transition producing the sub-pattern over some target subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transition {
    /// `target = from ∪ {new_vertex}` via exactly one pattern edge.
    Expand {
        /// The existing connected induced sub-pattern.
        from: VertexSet,
        /// The vertex being matched by this step.
        new_vertex: usize,
        /// The single pattern edge connecting `new_vertex` to `from`.
        edge: usize,
    },
    /// `target = from ∪ {new_vertex}` via a complete star of ≥ 2 edges whose
    /// leaves all lie in `from`.
    ExpandIntersect {
        /// The existing connected induced sub-pattern.
        from: VertexSet,
        /// The star's root vertex (newly matched).
        new_vertex: usize,
        /// All pattern edges between `new_vertex` and `from`.
        edges: Vec<usize>,
    },
    /// `target = left ∪ right`, both connected induced sub-patterns with a
    /// non-empty overlap, joined on the common vertices. Children partition
    /// the target's edges (no edge lies inside the overlap), matching the
    /// join decompositions enumerated by GLogS/HUGE.
    BinaryJoin {
        /// Left child subset.
        left: VertexSet,
        /// Right child subset.
        right: VertexSet,
    },
}

/// Enumerate every legal transition whose result is exactly `target`
/// (`target` must induce a connected sub-pattern with ≥ 2 vertices).
///
/// Binary joins are emitted as **unordered** pairs with `left < right`; cost
/// models treat ⋈ as symmetric, and plan counters that want ordered trees
/// double them.
pub fn transitions_into(p: &Pattern, target: VertexSet) -> Vec<Transition> {
    let mut out = Vec::new();
    if len(target) < 2 || !is_induced_connected(p, target) {
        return out;
    }
    // Vertex-extension transitions.
    for v in iter_vertices(target) {
        let from = remove(target, v);
        if !is_induced_connected(p, from) {
            continue;
        }
        let es = edges_between(p, from, v);
        match es.len() {
            0 => {}
            1 => out.push(Transition::Expand {
                from,
                new_vertex: v,
                edge: es[0],
            }),
            _ => out.push(Transition::ExpandIntersect {
                from,
                new_vertex: v,
                edges: es,
            }),
        }
    }
    // Binary joins of overlapping connected induced sub-patterns. Enumerate
    // `left` over proper subsets of `target` with ≥ 2 vertices; `right` must
    // also be a proper subset so neither child equals the parent. Children
    // must jointly cover the target's edges and be edge-disjoint (no target
    // edge inside the overlap): joins share vertices, not work.
    let target_edges = edges_within(p, target);
    let mut left = (target.wrapping_sub(1)) & target;
    while left != 0 {
        if len(left) >= 2 && is_induced_connected(p, left) {
            let rest = target & !left;
            // Enumerate right = rest ∪ o for overlap o ⊆ left, o ≠ ∅.
            let mut o = left;
            while o != 0 {
                let right = rest | o;
                if right != target
                    && len(right) >= 2
                    && left < right
                    && is_induced_connected(p, right)
                {
                    let covered_disjoint = target_edges.iter().all(|&ei| {
                        let e = p.edge(ei);
                        let in_left = contains(left, e.src) && contains(left, e.dst);
                        let in_right = contains(right, e.src) && contains(right, e.dst);
                        // Exactly one side owns each edge.
                        in_left != in_right
                    });
                    if covered_disjoint {
                        out.push(Transition::BinaryJoin { left, right });
                    }
                }
                o = (o - 1) & left;
            }
        }
        left = (left - 1) & target;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::fixtures::{fig2_triangle, path};

    #[test]
    fn set_primitives() {
        let s = insert(insert(0, 1), 3);
        assert!(contains(s, 1) && contains(s, 3) && !contains(s, 0));
        assert_eq!(len(s), 2);
        assert_eq!(iter_vertices(s).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(remove(s, 1), insert(0, 3));
        assert_eq!(full_set(3), 0b111);
        assert_eq!(full_set(16), u16::MAX);
    }

    #[test]
    fn induced_edges_and_connectivity() {
        let t = fig2_triangle(); // vertices p1=0, p2=1, m=2
        assert_eq!(edges_within(&t, 0b111).len(), 3);
        assert_eq!(edges_within(&t, 0b011), vec![0], "knows edge only");
        assert!(is_induced_connected(&t, 0b111));
        assert!(is_induced_connected(&t, 0b101), "p1-m via likes");
        assert!(is_induced_connected(&t, 0b001));
        assert!(!is_induced_connected(&t, 0));
        let p = path(3); // 0-1-2-3
        assert!(!is_induced_connected(&p, 0b1001), "ends of the path");
        assert!(is_induced_connected(&p, 0b0110));
    }

    #[test]
    fn connected_subsets_of_path() {
        let p = path(2); // vertices 0,1,2
        let subs = connected_induced_subsets(&p);
        // intervals only: {0},{1},{2},{0,1},{1,2},{0,1,2}
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&0b011));
        assert!(!subs.contains(&0b101));
    }

    #[test]
    fn sub_pattern_extraction_remaps() {
        let t = fig2_triangle();
        let (sub, map) = sub_pattern(&t, 0b110); // p2 and m
        assert_eq!(map, vec![1, 2]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1, "only the p2-likes-m edge survives");
        assert_eq!(sub.edge(0).src, 0);
        assert_eq!(sub.edge(0).dst, 1);
    }

    #[test]
    fn triangle_transitions() {
        let t = fig2_triangle();
        let ts = transitions_into(&t, 0b111);
        // Every vertex removal leaves a connected 2-subset joined by 2 edges
        // → three ExpandIntersect transitions; plus binary joins of
        // overlapping 2-subsets.
        let ei: Vec<_> = ts
            .iter()
            .filter(|t| matches!(t, Transition::ExpandIntersect { .. }))
            .collect();
        assert_eq!(ei.len(), 3);
        // No Case-I join: two 2-vertex induced children hold at most two of
        // the triangle's three edges. (The Fig-3 "join" with a star right
        // child *is* the ExpandIntersect transition.)
        assert!(!ts
            .iter()
            .any(|t| matches!(t, Transition::BinaryJoin { .. })));
        assert!(!ts.iter().any(|t| matches!(t, Transition::Expand { .. })));
    }

    #[test]
    fn path_transitions_are_expands_and_joins() {
        let p = path(2); // 0-1-2
        let ts = transitions_into(&p, 0b111);
        let expands: Vec<_> = ts
            .iter()
            .filter(|t| matches!(t, Transition::Expand { .. }))
            .collect();
        // Remove 0 → from {1,2} expand 0 via edge 0; remove 2 → expand 2.
        // Removing 1 disconnects, so no star on the middle vertex.
        assert_eq!(expands.len(), 2);
        let joins: Vec<_> = ts
            .iter()
            .filter(|t| matches!(t, Transition::BinaryJoin { .. }))
            .collect();
        // {0,1} ⋈ {1,2} only.
        assert_eq!(joins.len(), 1);
        assert_eq!(
            joins[0],
            &Transition::BinaryJoin {
                left: 0b011,
                right: 0b110
            }
        );
    }

    #[test]
    fn single_edge_target_expands_from_both_sides() {
        let p = path(1);
        let ts = transitions_into(&p, 0b11);
        assert_eq!(ts.len(), 2, "expand from either endpoint (paper Fig. 3)");
        assert!(ts.iter().all(|t| matches!(t, Transition::Expand { .. })));
    }

    #[test]
    fn transitions_into_trivial_targets_empty() {
        let p = path(2);
        assert!(transitions_into(&p, 0b001).is_empty());
        assert!(transitions_into(&p, 0b101).is_empty(), "disconnected");
    }
}
