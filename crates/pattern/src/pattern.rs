//! Pattern graphs.
//!
//! A [`Pattern`] is the `P(V_P, E_P)` of the paper: a connected property
//! graph without attributes, where every vertex and edge carries a label and
//! (optionally) a predicate contributed by `FilterIntoMatchRule`. Pattern
//! vertices are dense indices `0..n`; edges record explicit source/target,
//! matching the homomorphism semantics of §2.2.

use relgo_common::{LabelId, RelGoError, Result};
use relgo_storage::ScalarExpr;

/// Semantics of pattern matching (§2.2 / §3.1: the *all-distinct* operator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchSemantics {
    /// Plain homomorphism: pattern elements may map to the same data
    /// elements (the default, and the semantics all transformations use).
    #[default]
    Homomorphism,
    /// Homomorphism filtered so that all matched *vertices* are pairwise
    /// distinct (vertex-isomorphism).
    DistinctVertices,
    /// Homomorphism filtered so that all matched *edges* are pairwise
    /// distinct (no-repeated-edge).
    DistinctEdges,
}

/// A pattern vertex: label + optional predicate over the backing vertex
/// relation's columns.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternVertex {
    /// Vertex label (index into the graph schema's vertex labels).
    pub label: LabelId,
    /// Predicate over the vertex relation's columns (pushed down by
    /// `FilterIntoMatchRule`).
    pub predicate: Option<ScalarExpr>,
}

/// A pattern edge: directed, labeled, with optional predicate over the
/// backing edge relation's columns.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternEdge {
    /// Source pattern vertex.
    pub src: usize,
    /// Target pattern vertex.
    pub dst: usize,
    /// Edge label (index into the graph schema's edge labels).
    pub label: LabelId,
    /// Predicate over the edge relation's columns.
    pub predicate: Option<ScalarExpr>,
}

/// A connected, labeled pattern graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    vertices: Vec<PatternVertex>,
    edges: Vec<PatternEdge>,
    semantics: MatchSemantics,
}

impl Pattern {
    /// Maximum number of pattern vertices (vertex subsets are `u16` masks).
    pub const MAX_VERTICES: usize = 16;

    /// Number of pattern vertices `n`.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of pattern edges `m`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All vertices.
    pub fn vertices(&self) -> &[PatternVertex] {
        &self.vertices
    }

    /// All edges.
    pub fn edges(&self) -> &[PatternEdge] {
        &self.edges
    }

    /// Vertex at index `v`.
    pub fn vertex(&self, v: usize) -> &PatternVertex {
        &self.vertices[v]
    }

    /// Edge at index `e`.
    pub fn edge(&self, e: usize) -> &PatternEdge {
        &self.edges[e]
    }

    /// Matching semantics.
    pub fn semantics(&self) -> MatchSemantics {
        self.semantics
    }

    /// Replace the matching semantics.
    pub fn with_semantics(mut self, semantics: MatchSemantics) -> Pattern {
        self.semantics = semantics;
        self
    }

    /// Indices of edges incident to vertex `v`.
    pub fn incident_edges(&self, v: usize) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.src == v || e.dst == v)
            .map(|(i, _)| i)
            .collect()
    }

    /// The vertex at the other end of edge `e` from `v`.
    pub fn other_endpoint(&self, e: usize, v: usize) -> usize {
        let edge = &self.edges[e];
        if edge.src == v {
            edge.dst
        } else {
            edge.src
        }
    }

    /// Neighbor vertex indices of `v` (deduplicated).
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        let mut ns: Vec<usize> = self
            .incident_edges(v)
            .into_iter()
            .map(|e| self.other_endpoint(e, v))
            .collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    }

    /// Whether the pattern is connected (required by §2.2).
    pub fn is_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return false;
        }
        let n = self.vertices.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for e in &self.edges {
                for (a, b) in [(e.src, e.dst), (e.dst, e.src)] {
                    if a == v && !seen[b] {
                        seen[b] = true;
                        count += 1;
                        stack.push(b);
                    }
                }
            }
        }
        count == n
    }

    /// Attach (conjoin) a predicate to vertex `v`.
    pub fn add_vertex_predicate(&mut self, v: usize, pred: ScalarExpr) {
        let slot = &mut self.vertices[v].predicate;
        *slot = Some(ScalarExpr::conjoin(slot.take(), pred));
    }

    /// Attach (conjoin) a predicate to edge `e`.
    pub fn add_edge_predicate(&mut self, e: usize, pred: ScalarExpr) {
        let slot = &mut self.edges[e].predicate;
        *slot = Some(ScalarExpr::conjoin(slot.take(), pred));
    }

    /// Rewrite every element predicate through `f` (plan-cache rebinding
    /// substitutes fresh parameter literals this way).
    pub fn map_predicates(&self, f: &mut dyn FnMut(&ScalarExpr) -> ScalarExpr) -> Pattern {
        let mut out = self.clone();
        for v in &mut out.vertices {
            if let Some(p) = &v.predicate {
                v.predicate = Some(f(p));
            }
        }
        for e in &mut out.edges {
            if let Some(p) = &e.predicate {
                e.predicate = Some(f(p));
            }
        }
        out
    }

    /// Whether any pattern element carries a predicate.
    pub fn has_predicates(&self) -> bool {
        self.vertices.iter().any(|v| v.predicate.is_some())
            || self.edges.iter().any(|e| e.predicate.is_some())
    }

    /// Strip all predicates (the structural skeleton used for canonical
    /// codes and statistics lookups).
    pub fn skeleton(&self) -> Pattern {
        Pattern {
            vertices: self
                .vertices
                .iter()
                .map(|v| PatternVertex {
                    label: v.label,
                    predicate: None,
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .map(|e| PatternEdge {
                    src: e.src,
                    dst: e.dst,
                    label: e.label,
                    predicate: None,
                })
                .collect(),
            semantics: self.semantics,
        }
    }
}

/// Ergonomic builder for [`Pattern`]s with named vertices.
#[derive(Debug, Default)]
pub struct PatternBuilder {
    names: Vec<String>,
    vertices: Vec<PatternVertex>,
    edges: Vec<PatternEdge>,
    semantics: MatchSemantics,
}

impl PatternBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        PatternBuilder::default()
    }

    /// Add a vertex named `name` with the given label; returns its index.
    pub fn vertex(&mut self, name: &str, label: LabelId) -> usize {
        debug_assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate pattern vertex name '{name}'"
        );
        self.names.push(name.to_string());
        self.vertices.push(PatternVertex {
            label,
            predicate: None,
        });
        self.vertices.len() - 1
    }

    /// Index of the vertex named `name`.
    pub fn vertex_index(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| RelGoError::query(format!("unknown pattern vertex '{name}'")))
    }

    /// Add a directed edge `src → dst` with the given edge label; returns
    /// its index.
    pub fn edge(&mut self, src: usize, dst: usize, label: LabelId) -> Result<usize> {
        if src >= self.vertices.len() || dst >= self.vertices.len() {
            return Err(RelGoError::query("edge endpoint out of bounds"));
        }
        if src == dst {
            return Err(RelGoError::query(
                "self-loop pattern edges are not supported",
            ));
        }
        self.edges.push(PatternEdge {
            src,
            dst,
            label,
            predicate: None,
        });
        Ok(self.edges.len() - 1)
    }

    /// Attach a predicate to a vertex.
    pub fn vertex_predicate(&mut self, v: usize, pred: ScalarExpr) {
        let slot = &mut self.vertices[v].predicate;
        *slot = Some(ScalarExpr::conjoin(slot.take(), pred));
    }

    /// Attach a predicate to an edge.
    pub fn edge_predicate(&mut self, e: usize, pred: ScalarExpr) {
        let slot = &mut self.edges[e].predicate;
        *slot = Some(ScalarExpr::conjoin(slot.take(), pred));
    }

    /// Set the matching semantics.
    pub fn semantics(&mut self, s: MatchSemantics) {
        self.semantics = s;
    }

    /// Vertex names in index order (consumed by the query layer to map
    /// pattern aliases to COLUMNS-clause projections).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Finish, validating connectivity and size limits.
    pub fn build(self) -> Result<Pattern> {
        if self.vertices.is_empty() {
            return Err(RelGoError::query("pattern must have at least one vertex"));
        }
        if self.vertices.len() > Pattern::MAX_VERTICES {
            return Err(RelGoError::query(format!(
                "pattern exceeds {} vertices",
                Pattern::MAX_VERTICES
            )));
        }
        let p = Pattern {
            vertices: self.vertices,
            edges: self.edges,
            semantics: self.semantics,
        };
        if !p.is_connected() {
            return Err(RelGoError::query("pattern must be connected"));
        }
        Ok(p)
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;

    /// The triangle of the paper's Fig. 2(b): (p1)-[Knows]->(p2),
    /// (p1)-[Likes]->(m), (p2)-[Likes]->(m). Labels: Person=0, Message=1
    /// (vertices); Likes=0, Knows=1 (edges).
    pub fn fig2_triangle() -> Pattern {
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let p2 = b.vertex("p2", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, p2, LabelId(1)).unwrap();
        b.edge(p1, m, LabelId(0)).unwrap();
        b.edge(p2, m, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    /// A labeled path v0 -e-> v1 -e-> ... of `m` edges over a single vertex
    /// label 0 and edge label 0.
    pub fn path(m: usize) -> Pattern {
        let mut b = PatternBuilder::new();
        let mut prev = b.vertex("v0", LabelId(0));
        for i in 1..=m {
            let v = b.vertex(&format!("v{i}"), LabelId(0));
            b.edge(prev, v, LabelId(0)).unwrap();
            prev = v;
        }
        b.build().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;
    use relgo_storage::ScalarExpr;

    #[test]
    fn builder_assigns_indices_and_names() {
        let mut b = PatternBuilder::new();
        let a = b.vertex("a", LabelId(0));
        let c = b.vertex("c", LabelId(1));
        assert_eq!(a, 0);
        assert_eq!(c, 1);
        assert_eq!(b.vertex_index("c").unwrap(), 1);
        assert!(b.vertex_index("z").is_err());
    }

    #[test]
    fn disconnected_pattern_rejected() {
        let mut b = PatternBuilder::new();
        b.vertex("a", LabelId(0));
        b.vertex("b", LabelId(0));
        assert!(matches!(b.build(), Err(RelGoError::Query(_))));
    }

    #[test]
    fn single_vertex_is_connected() {
        let mut b = PatternBuilder::new();
        b.vertex("a", LabelId(0));
        let p = b.build().unwrap();
        assert!(p.is_connected());
        assert_eq!(p.vertex_count(), 1);
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = PatternBuilder::new();
        let a = b.vertex("a", LabelId(0));
        assert!(b.edge(a, a, LabelId(0)).is_err());
    }

    #[test]
    fn triangle_adjacency() {
        let p = fig2_triangle();
        assert_eq!(p.vertex_count(), 3);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.incident_edges(0), vec![0, 1]);
        assert_eq!(p.neighbors(0), vec![1, 2]);
        assert_eq!(p.other_endpoint(0, 0), 1);
        assert_eq!(p.other_endpoint(0, 1), 0);
    }

    #[test]
    fn predicates_conjoin() {
        let mut p = fig2_triangle();
        assert!(!p.has_predicates());
        p.add_vertex_predicate(0, ScalarExpr::col_eq(1, "Tom"));
        p.add_vertex_predicate(0, ScalarExpr::col_eq(2, 10));
        assert!(p.has_predicates());
        let pred = p.vertex(0).predicate.as_ref().unwrap();
        assert!(matches!(pred, ScalarExpr::And(..)));
        assert!(!p.skeleton().has_predicates());
    }

    #[test]
    fn path_fixture_shape() {
        let p = path(4);
        assert_eq!(p.vertex_count(), 5);
        assert_eq!(p.edge_count(), 4);
        assert!(p.is_connected());
        assert_eq!(p.neighbors(2), vec![1, 3]);
    }

    #[test]
    fn semantics_default_and_override() {
        let p = fig2_triangle();
        assert_eq!(p.semantics(), MatchSemantics::Homomorphism);
        let p = p.with_semantics(MatchSemantics::DistinctVertices);
        assert_eq!(p.semantics(), MatchSemantics::DistinctVertices);
    }

    #[test]
    fn size_limit_enforced() {
        let mut b = PatternBuilder::new();
        let mut prev = b.vertex("v0", LabelId(0));
        for i in 1..=Pattern::MAX_VERTICES {
            let v = b.vertex(&format!("v{i}"), LabelId(0));
            b.edge(prev, v, LabelId(0)).unwrap();
            prev = v;
        }
        assert!(b.build().is_err());
    }
}
