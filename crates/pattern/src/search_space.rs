//! Exact search-space counters (regenerates Fig. 4a).
//!
//! *Graph-aware* space: the number of distinct decomposition trees of `P`
//! under the constraints of §3.1.2 (induced intermediates, single-vertex /
//! complete-star MMCs). Binary-join children are counted **ordered**
//! (left/right swap = different physical plan), matching a Volcano-style
//! enumeration.
//!
//! *Graph-agnostic* space: the number of ordered bushy join trees without
//! cross products over the SPJ join graph produced by the Lemma-1
//! transformation (`n` vertex relations + `m` edge relations, EVJoin edges).
//! For path patterns the join graph is a relation chain and we use an
//! `O(k³)` interval DP; general join graphs fall back to a connected-subset
//! DP (practical to ~16 relations).

use crate::decompose::{
    connected_induced_subsets, full_set, len, transitions_into, Transition, VertexSet,
};
use crate::pattern::Pattern;
use relgo_common::{FxHashMap, RelGoError, Result};

/// Count decomposition trees of the full pattern (graph-aware space).
pub fn aware_plan_count(p: &Pattern) -> u128 {
    let mut memo: FxHashMap<VertexSet, u128> = FxHashMap::default();
    for s in connected_induced_subsets(p) {
        let plans = if len(s) == 1 {
            1
        } else {
            let mut total: u128 = 0;
            for t in transitions_into(p, s) {
                match t {
                    Transition::Expand { from, .. } | Transition::ExpandIntersect { from, .. } => {
                        // The MMC leaf is fixed; choices live in the left
                        // child. A single-vertex `from` still counts 1 (the
                        // paper's "which vertex to expand from" choice is
                        // captured by there being several Expand transitions
                        // into the 2-vertex target).
                        total += memo[&from];
                    }
                    Transition::BinaryJoin { left, right } => {
                        // Ordered children: count both orientations.
                        total += 2 * memo[&left] * memo[&right];
                    }
                }
            }
            total
        };
        memo.insert(s, plans);
    }
    memo[&full_set(p.vertex_count())]
}

/// The join graph of the graph-agnostic transformation: node `i < n` is the
/// vertex relation of pattern vertex `i`; node `n + j` is the edge relation
/// of pattern edge `j`; EVJoin links every edge relation to its two endpoint
/// vertex relations.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Number of relation nodes.
    pub relations: usize,
    adj: Vec<Vec<usize>>,
}

impl JoinGraph {
    /// Build the agnostic join graph of `p`.
    pub fn from_pattern(p: &Pattern) -> JoinGraph {
        let n = p.vertex_count();
        let k = n + p.edge_count();
        let mut adj = vec![Vec::new(); k];
        for (j, e) in p.edges().iter().enumerate() {
            let enode = n + j;
            for vnode in [e.src, e.dst] {
                adj[enode].push(vnode);
                adj[vnode].push(enode);
            }
        }
        JoinGraph { relations: k, adj }
    }

    /// Neighbors of relation node `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Whether the join graph is a simple chain (every node has degree ≤ 2,
    /// exactly two endpoints of degree 1, connected, no duplicate links).
    fn chain_order(&self) -> Option<Vec<usize>> {
        let mut simple_adj: Vec<Vec<usize>> = self
            .adj
            .iter()
            .map(|ns| {
                let mut v = ns.clone();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        // Reject multi-edges (parallel pattern edges make the agnostic join
        // graph a multigraph, which is not a chain).
        for (i, ns) in self.adj.iter().enumerate() {
            let mut v = ns.clone();
            v.sort_unstable();
            let had = v.len();
            v.dedup();
            if v.len() != had {
                return None;
            }
            let _ = i;
        }
        let ends: Vec<usize> = (0..self.relations)
            .filter(|&i| simple_adj[i].len() == 1)
            .collect();
        if self.relations == 1 {
            return Some(vec![0]);
        }
        if ends.len() != 2 || simple_adj.iter().any(|ns| ns.len() > 2) {
            return None;
        }
        let mut order = vec![ends[0]];
        let mut prev = usize::MAX;
        let mut cur = ends[0];
        while order.len() < self.relations {
            let next = *simple_adj[cur].iter().find(|&&x| x != prev)?;
            order.push(next);
            prev = cur;
            cur = next;
            simple_adj[prev].retain(|&x| x != usize::MAX); // no-op, keep borrowck happy
        }
        Some(order)
    }
}

/// Count ordered bushy join trees without cross products over `jg`.
///
/// Uses the interval DP when the join graph is a chain; otherwise a
/// connected-subset DP (limited to 24 relations; patterns that large are far
/// beyond anything the optimizers handle).
pub fn count_join_trees(jg: &JoinGraph) -> Result<u128> {
    if jg.relations == 0 {
        return Ok(0);
    }
    if let Some(order) = jg.chain_order() {
        return Ok(count_chain_trees(order.len()));
    }
    if jg.relations > 24 {
        return Err(RelGoError::plan(format!(
            "join-tree counting limited to 24 relations, got {}",
            jg.relations
        )));
    }
    Ok(count_general_trees(jg))
}

/// Ordered bushy trees over a chain of `k` relations: interval DP.
fn count_chain_trees(k: usize) -> u128 {
    // plans[i][j] = ordered join trees for the interval [i, j].
    let mut plans = vec![vec![0u128; k]; k];
    for (i, row) in plans.iter_mut().enumerate() {
        row[i] = 1;
    }
    for span in 2..=k {
        for i in 0..=(k - span) {
            let j = i + span - 1;
            let mut total = 0u128;
            for split in i..j {
                // Both (A,B) and (B,A) orientations.
                total += 2 * plans[i][split] * plans[split + 1][j];
            }
            plans[i][j] = total;
        }
    }
    plans[0][k - 1]
}

/// Generic connected-subset DP for arbitrary join graphs (ordered trees,
/// cross products excluded).
fn count_general_trees(jg: &JoinGraph) -> u128 {
    let k = jg.relations;
    let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
    let connected = |s: u32| -> bool {
        if s == 0 {
            return false;
        }
        let start = s.trailing_zeros() as usize;
        let mut seen: u32 = 1 << start;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &n in jg.neighbors(v) {
                let bit = 1u32 << n;
                if s & bit != 0 && seen & bit == 0 {
                    seen |= bit;
                    stack.push(n);
                }
            }
        }
        seen == s
    };
    let mut memo: FxHashMap<u32, u128> = FxHashMap::default();
    // Evaluate subsets in increasing popcount order.
    let mut subsets: Vec<u32> = (1..=full).filter(|&s| connected(s)).collect();
    subsets.sort_by_key(|s| s.count_ones());
    for &s in &subsets {
        if s.count_ones() == 1 {
            memo.insert(s, 1);
            continue;
        }
        let mut total = 0u128;
        // Enumerate proper non-empty subsets a of s with fixed lowest bit to
        // halve the work, then count ordered ×2.
        let low = s & s.wrapping_neg();
        let rest = s & !low;
        let mut a = rest;
        loop {
            let left = a | low;
            if left != s {
                let right = s & !left;
                if let (Some(&pl), Some(&pr)) = (memo.get(&left), memo.get(&right)) {
                    // Cross-product exclusion: both sides connected (implied
                    // by memo hit) and at least one join-graph edge between.
                    let linked = (0..k).any(|v| {
                        left & (1 << v) != 0
                            && jg.neighbors(v).iter().any(|&n| right & (1 << n) != 0)
                    });
                    if linked {
                        total += 2 * pl * pr;
                    }
                }
            }
            if a == 0 {
                break;
            }
            a = (a - 1) & rest;
        }
        memo.insert(s, total);
    }
    memo.get(&full).copied().unwrap_or(0)
}

/// Count the agnostic search space of pattern `p` (join trees over the
/// Lemma-1 transformation's join graph).
pub fn agnostic_plan_count(p: &Pattern) -> Result<u128> {
    count_join_trees(&JoinGraph::from_pattern(p))
}

/// One row of the Fig. 4a series: edge count, aware space, agnostic space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpaceRow {
    /// Path length (number of pattern edges).
    pub edges: usize,
    /// Graph-aware plan count.
    pub aware: u128,
    /// Graph-agnostic plan count.
    pub agnostic: u128,
}

/// Compute the Fig. 4a series for path patterns of `1..=max_edges` edges.
pub fn fig4a_series(max_edges: usize) -> Result<Vec<SearchSpaceRow>> {
    let mut rows = Vec::with_capacity(max_edges);
    for m in 1..=max_edges {
        let p = path_pattern(m);
        rows.push(SearchSpaceRow {
            edges: m,
            aware: aware_plan_count(&p),
            agnostic: agnostic_plan_count(&p)?,
        });
    }
    Ok(rows)
}

/// A single-label path pattern with `m` edges (the micro-benchmark's shape).
pub fn path_pattern(m: usize) -> Pattern {
    use crate::pattern::PatternBuilder;
    use relgo_common::LabelId;
    let mut b = PatternBuilder::new();
    let mut prev = b.vertex("v0", LabelId(0));
    for i in 1..=m {
        let v = b.vertex(&format!("v{i}"), LabelId(0));
        b.edge(prev, v, LabelId(0)).expect("valid chain edge");
        prev = v;
    }
    b.build().expect("paths are connected")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::fixtures::fig2_triangle;

    #[test]
    fn chain_counts_match_closed_form() {
        // Ordered bushy no-cross-product trees over a chain of k relations:
        // N(k) = 2^(k-1) * Catalan(k-1).
        fn closed(k: usize) -> u128 {
            let catalan = |n: u128| -> u128 {
                let mut c = 1u128;
                for i in 0..n {
                    c = c * 2 * (2 * i + 1) / (i + 2);
                }
                c
            };
            2u128.pow(k as u32 - 1) * catalan(k as u128 - 1)
        }
        // count_chain_trees(1) = 1 (single relation, no join).
        assert_eq!(count_chain_trees(1), 1);
        assert_eq!(count_chain_trees(2), 2);
        assert_eq!(count_chain_trees(3), 8);
        assert_eq!(count_chain_trees(4), 40);
        for k in 2..=10 {
            assert_eq!(count_chain_trees(k), closed(k), "k = {k}");
        }
    }

    #[test]
    fn general_counter_agrees_with_chain_counter() {
        for m in 1..=3 {
            let p = path_pattern(m);
            let jg = JoinGraph::from_pattern(&p);
            assert_eq!(
                count_general_trees(&jg),
                count_chain_trees(jg.relations),
                "m = {m}"
            );
        }
    }

    #[test]
    fn aware_single_edge_has_two_plans() {
        assert_eq!(aware_plan_count(&path_pattern(1)), 2);
    }

    #[test]
    fn aware_space_grows_but_slower_than_agnostic() {
        let rows = fig4a_series(6).unwrap();
        for w in rows.windows(2) {
            assert!(w[1].aware >= w[0].aware);
            assert!(w[1].agnostic > w[0].agnostic);
        }
        for r in &rows {
            assert!(
                r.agnostic > r.aware,
                "m={}: agnostic {} must exceed aware {}",
                r.edges,
                r.agnostic,
                r.aware
            );
        }
        // The gap must widen multiplicatively (Theorem 1: exponential gap).
        let first_ratio = rows[0].agnostic as f64 / rows[0].aware as f64;
        let last_ratio = rows[5].agnostic as f64 / rows[5].aware as f64;
        assert!(last_ratio > 10.0 * first_ratio);
    }

    #[test]
    fn agnostic_path_m10_is_about_1e15() {
        // The paper's Fig 4a shows ~10^15 at m = 10 (21-relation chain).
        let p = path_pattern(10);
        let c = agnostic_plan_count(&p).unwrap();
        assert!(c > 10u128.pow(14), "got {c}");
        assert!(c < 10u128.pow(17), "got {c}");
    }

    #[test]
    fn ratio_at_m10_matches_paper_magnitude() {
        // Fig 4a (right): Agnostic/Aware reaches ~10^5 at m = 10.
        let p = path_pattern(10);
        let aware = aware_plan_count(&p);
        let agnostic = agnostic_plan_count(&p).unwrap();
        let ratio = agnostic as f64 / aware as f64;
        assert!(
            (1e4..1e7).contains(&ratio),
            "ratio {ratio:.3e} out of the paper's magnitude window"
        );
    }

    #[test]
    fn triangle_join_graph_is_not_a_chain() {
        let t = fig2_triangle();
        let jg = JoinGraph::from_pattern(&t);
        assert_eq!(jg.relations, 6);
        assert!(jg.chain_order().is_none());
        // Still countable by the general DP.
        let c = count_join_trees(&jg).unwrap();
        assert!(c > 0);
        assert!(c > aware_plan_count(&t));
    }

    #[test]
    fn join_graph_structure() {
        let p = path_pattern(2);
        let jg = JoinGraph::from_pattern(&p);
        // 3 vertex relations + 2 edge relations.
        assert_eq!(jg.relations, 5);
        // Edge relation node 3 links vertices 0 and 1.
        let mut ns = jg.neighbors(3).to_vec();
        ns.sort_unstable();
        assert_eq!(ns, vec![0, 1]);
    }
}
