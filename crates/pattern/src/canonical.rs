//! Isomorphism-invariant canonical codes for patterns.
//!
//! GLogue keys its cardinality table by *pattern shape*: two patterns that
//! differ only by vertex renaming must hit the same statistics entry. We
//! compute an exact canonical form by minimizing the pattern's encoding over
//! all label-preserving vertex permutations.
//!
//! Patterns are small (the paper uses `k = 3` for GLogue vertices and query
//! patterns rarely exceed 8 vertices), so the factorial search — restricted
//! to label-sorted arrangements and pruned lexicographically — is exact and
//! fast in practice.

use crate::pattern::Pattern;
use relgo_common::fxhash::{combine, hash_u64};

/// A canonical pattern code: the lexicographically minimal encoding over all
/// label-preserving vertex relabelings. Equal codes ⇔ isomorphic skeletons
/// (labels respected, predicates ignored).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonCode(Box<[u32]>);

impl CanonCode {
    /// A compact 64-bit fingerprint (for diagnostics; the full code is what
    /// hash maps key on).
    pub fn fingerprint(&self) -> u64 {
        self.0
            .iter()
            .fold(hash_u64(self.0.len() as u64), |acc, &w| {
                combine(acc, w as u64)
            })
    }
}

/// Encode the pattern under a fixed permutation `perm` (`perm[old] = new`).
fn encode(p: &Pattern, perm: &[usize]) -> Vec<u32> {
    let n = p.vertex_count();
    let mut code = Vec::with_capacity(2 + n + 3 * p.edge_count());
    code.push(n as u32);
    code.push(p.edge_count() as u32);
    // Vertex labels in new order.
    let mut labels = vec![0u32; n];
    for (old, &new) in perm.iter().enumerate() {
        labels[new] = p.vertex(old).label.0 as u32;
    }
    code.extend_from_slice(&labels);
    // Edge triples (src', dst', label), sorted.
    let mut edges: Vec<[u32; 3]> = p
        .edges()
        .iter()
        .map(|e| [perm[e.src] as u32, perm[e.dst] as u32, e.label.0 as u32])
        .collect();
    edges.sort_unstable();
    for e in edges {
        code.extend_from_slice(&e);
    }
    code
}

/// A canonical code together with the renaming that realizes it — enough to
/// translate element references of the *original* pattern into canonical
/// positions (plan-cache keys fingerprint whole queries this way, so that
/// isomorphic/renamed queries normalize identically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    /// The canonical code itself.
    pub code: CanonCode,
    /// `vertex_perm[old] = canonical position` of each pattern vertex.
    pub vertex_perm: Vec<usize>,
    /// `edge_perm[old] = canonical position` of each pattern edge (position
    /// in the code's sorted edge-triple list; ties between identical
    /// parallel edges break by original index).
    pub edge_perm: Vec<usize>,
}

/// Compute the canonical code of `p`'s skeleton.
///
/// The minimal encoding necessarily lists vertex labels in non-decreasing
/// order, so the search only permutes vertices *within* equal-label groups;
/// group arrangements are enumerated by backtracking with lexicographic
/// pruning against the best encoding found so far.
pub fn canonical_code(p: &Pattern) -> CanonCode {
    canonical_form(p).code
}

/// Compute the canonical code *and* the vertex/edge renamings realizing it.
pub fn canonical_form(p: &Pattern) -> CanonicalForm {
    let n = p.vertex_count();
    // Group vertices by label; the label-block layout is forced.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| p.vertex(v).label.0);
    // perm[old] = new position; start from the label-sorted arrangement.
    let mut best: Option<(Vec<u32>, Vec<usize>)> = None;
    let mut perm = vec![usize::MAX; n];

    // Recursive assignment of new positions 0..n to vertices, restricted to
    // the label-block structure (position i may only take vertices whose
    // label equals the label of order[i]).
    fn rec(
        p: &Pattern,
        order: &[usize],
        pos: usize,
        used: &mut Vec<bool>,
        perm: &mut Vec<usize>,
        best: &mut Option<(Vec<u32>, Vec<usize>)>,
    ) {
        let n = order.len();
        if pos == n {
            let code = encode(p, perm);
            if best.as_ref().is_none_or(|(b, _)| code < *b) {
                *best = Some((code, perm.clone()));
            }
            return;
        }
        let want_label = p.vertex(order[pos]).label;
        for v in 0..n {
            if used[v] || p.vertex(v).label != want_label {
                continue;
            }
            used[v] = true;
            perm[v] = pos;
            rec(p, order, pos + 1, used, perm, best);
            perm[v] = usize::MAX;
            used[v] = false;
        }
    }

    let mut used = vec![false; n];
    rec(p, &order, 0, &mut used, &mut perm, &mut best);
    let (code, vertex_perm) = best.expect("at least one permutation exists");

    // Canonical edge positions: the code lists edge triples sorted by
    // (src', dst', label); recover each original edge's slot in that order,
    // breaking ties between identical parallel edges by original index.
    let mut triples: Vec<([u32; 3], usize)> = p
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            (
                [
                    vertex_perm[e.src] as u32,
                    vertex_perm[e.dst] as u32,
                    e.label.0 as u32,
                ],
                i,
            )
        })
        .collect();
    triples.sort();
    let mut edge_perm = vec![usize::MAX; p.edge_count()];
    for (canonical, &(_, old)) in triples.iter().enumerate() {
        edge_perm[old] = canonical;
    }

    CanonicalForm {
        code: CanonCode(code.into_boxed_slice()),
        vertex_perm,
        edge_perm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, PatternBuilder};
    use relgo_common::LabelId;

    fn triangle(order: [usize; 3]) -> Pattern {
        // Build the Fig-2 triangle with vertices inserted in the given
        // role order; roles: 0 = p1 (Person), 1 = p2 (Person), 2 = m
        // (Message). Edges: Knows(p1→p2), Likes(p1→m), Likes(p2→m).
        let mut b = PatternBuilder::new();
        let mut idx = [usize::MAX; 3];
        for (slot, &role) in order.iter().enumerate() {
            let label = if role == 2 { LabelId(1) } else { LabelId(0) };
            idx[role] = b.vertex(&format!("v{slot}"), label);
        }
        b.edge(idx[0], idx[1], LabelId(1)).unwrap();
        b.edge(idx[0], idx[2], LabelId(0)).unwrap();
        b.edge(idx[1], idx[2], LabelId(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn isomorphic_patterns_share_codes() {
        let a = canonical_code(&triangle([0, 1, 2]));
        let b = canonical_code(&triangle([2, 0, 1]));
        let c = canonical_code(&triangle([1, 2, 0]));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn canonical_form_aligns_renamed_elements() {
        // The same triangle inserted in two different vertex orders: the
        // canonical permutations must send corresponding roles (and the
        // role-aligned edges) to the same canonical slots.
        let a = canonical_form(&triangle([0, 1, 2]));
        let b = canonical_form(&triangle([2, 0, 1]));
        assert_eq!(a.code, b.code);
        // triangle(order) puts role r at builder index idx[r] with
        // order[slot] = role, so idx = inverse(order).
        let idx_a = [0usize, 1, 2]; // order [0,1,2]
        let idx_b = [1usize, 2, 0]; // order [2,0,1]
        for role in 0..3 {
            assert_eq!(
                a.vertex_perm[idx_a[role]], b.vertex_perm[idx_b[role]],
                "role {role}"
            );
        }
        // Edges are inserted in role order in both builds.
        assert_eq!(a.edge_perm, b.edge_perm);
        // Both perms are permutations of 0..3.
        let mut sa = a.vertex_perm.clone();
        sa.sort_unstable();
        assert_eq!(sa, vec![0, 1, 2]);
        let mut ea = a.edge_perm.clone();
        ea.sort_unstable();
        assert_eq!(ea, vec![0, 1, 2]);
    }

    #[test]
    fn different_labels_different_codes() {
        let mut b1 = PatternBuilder::new();
        let x = b1.vertex("x", LabelId(0));
        let y = b1.vertex("y", LabelId(0));
        b1.edge(x, y, LabelId(0)).unwrap();
        let p1 = b1.build().unwrap();

        let mut b2 = PatternBuilder::new();
        let x = b2.vertex("x", LabelId(0));
        let y = b2.vertex("y", LabelId(1));
        b2.edge(x, y, LabelId(0)).unwrap();
        let p2 = b2.build().unwrap();

        assert_ne!(canonical_code(&p1), canonical_code(&p2));
    }

    #[test]
    fn edge_direction_matters() {
        // a→b vs b→a over distinct labels are non-isomorphic.
        let mut b1 = PatternBuilder::new();
        let x = b1.vertex("x", LabelId(0));
        let y = b1.vertex("y", LabelId(1));
        b1.edge(x, y, LabelId(0)).unwrap();
        let p1 = b1.build().unwrap();

        let mut b2 = PatternBuilder::new();
        let x = b2.vertex("x", LabelId(0));
        let y = b2.vertex("y", LabelId(1));
        b2.edge(y, x, LabelId(0)).unwrap();
        let p2 = b2.build().unwrap();

        assert_ne!(canonical_code(&p1), canonical_code(&p2));
    }

    #[test]
    fn direction_symmetric_pair_same_code_when_labels_equal() {
        // Over a single vertex label, a→b is isomorphic to b→a (swap).
        let mk = |flip: bool| {
            let mut b = PatternBuilder::new();
            let x = b.vertex("x", LabelId(0));
            let y = b.vertex("y", LabelId(0));
            if flip {
                b.edge(y, x, LabelId(0)).unwrap();
            } else {
                b.edge(x, y, LabelId(0)).unwrap();
            }
            b.build().unwrap()
        };
        assert_eq!(canonical_code(&mk(false)), canonical_code(&mk(true)));
    }

    #[test]
    fn path_vs_star_differ() {
        use crate::pattern::fixtures::path;
        let p3 = path(3);
        // Star with 3 leaves: center c, edges c→l1, c→l2, c→l3.
        let mut b = PatternBuilder::new();
        let c = b.vertex("c", LabelId(0));
        for i in 0..3 {
            let l = b.vertex(&format!("l{i}"), LabelId(0));
            b.edge(c, l, LabelId(0)).unwrap();
        }
        let star = b.build().unwrap();
        assert_ne!(canonical_code(&p3), canonical_code(&star));
    }

    #[test]
    fn predicates_do_not_change_code() {
        use relgo_storage::ScalarExpr;
        let p = triangle([0, 1, 2]);
        let mut q = p.clone();
        q.add_vertex_predicate(0, ScalarExpr::col_eq(1, "Tom"));
        assert_eq!(canonical_code(&p), canonical_code(&q));
    }

    #[test]
    fn multi_edge_patterns_distinguished() {
        // One Likes edge vs two parallel Likes edges between the same pair.
        let mut b1 = PatternBuilder::new();
        let x = b1.vertex("x", LabelId(0));
        let y = b1.vertex("y", LabelId(1));
        b1.edge(x, y, LabelId(0)).unwrap();
        let single = b1.build().unwrap();

        let mut b2 = PatternBuilder::new();
        let x = b2.vertex("x", LabelId(0));
        let y = b2.vertex("y", LabelId(1));
        b2.edge(x, y, LabelId(0)).unwrap();
        b2.edge(x, y, LabelId(0)).unwrap();
        let double = b2.build().unwrap();

        assert_ne!(canonical_code(&single), canonical_code(&double));
    }
}
