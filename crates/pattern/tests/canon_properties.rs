//! Property tests for the canonical-code machinery: `CanonCode` must be
//! invariant under label-preserving vertex relabelings (the plan cache and
//! GLogue both key on this), and sensitive to single-edge edits.

use proptest::prelude::*;
use relgo_common::LabelId;
use relgo_pattern::{canonical_code, canonical_form, Pattern, PatternBuilder};

/// A random connected pattern: `n` vertices with labels from a small
/// alphabet, a random spanning tree plus a few extra random edges.
#[derive(Debug, Clone)]
struct RawPattern {
    labels: Vec<u16>,
    /// Spanning-tree attachment: vertex i (≥ 1) attaches to `tree[i - 1]`.
    tree: Vec<usize>,
    extra: Vec<(usize, usize)>,
    edge_labels: Vec<u16>,
}

impl RawPattern {
    fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = self
            .tree
            .iter()
            .enumerate()
            .map(|(i, &parent)| (parent % (i + 1), i + 1))
            .collect();
        let n = self.vertex_count();
        edges.extend(self.extra.iter().map(|&(a, b)| {
            let a = a % n;
            let mut b = b % n;
            if a == b {
                // Self-loop pattern edges are rejected; bend to a neighbor
                // (n >= 2 by construction).
                b = (b + 1) % n;
            }
            (a, b)
        }));
        edges
    }

    /// Build with vertices inserted in the order given by `order[slot] =
    /// original vertex` (identity order = the reference pattern).
    fn build(&self, order: &[usize]) -> Pattern {
        let mut b = PatternBuilder::new();
        // new_index[original] = builder index.
        let mut new_index = vec![usize::MAX; self.vertex_count()];
        for &orig in order {
            new_index[orig] = b.vertex(&format!("v{orig}"), LabelId(self.labels[orig]));
        }
        for (k, (src, dst)) in self.edges().into_iter().enumerate() {
            let label = LabelId(self.edge_labels[k % self.edge_labels.len()]);
            b.edge(new_index[src], new_index[dst], label).unwrap();
        }
        b.build().unwrap()
    }
}

fn raw_pattern() -> impl Strategy<Value = RawPattern> {
    (2usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u16..3, n..n + 1),
            proptest::collection::vec(0usize..n.max(1), (n - 1)..n),
            proptest::collection::vec((0usize..n, 0usize..n), 0..3),
            proptest::collection::vec(0u16..2, 1..4),
        )
            .prop_map(|(labels, tree, extra, edge_labels)| RawPattern {
                labels,
                tree,
                extra,
                edge_labels,
            })
    })
}

/// A random permutation of `0..n`, derived from a priority vector.
fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0u64..u64::MAX, n..n + 1).prop_map(|prio| {
        let mut order: Vec<usize> = (0..prio.len()).collect();
        order.sort_by_key(|&i| prio[i]);
        order
    })
}

fn raw_and_perm() -> impl Strategy<Value = (RawPattern, Vec<usize>)> {
    raw_pattern().prop_flat_map(|raw| {
        let n = raw.vertex_count();
        (Just(raw), permutation(n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn relabelings_preserve_canonical_codes(input in raw_and_perm()) {
        let (raw, order) = input;
        let identity: Vec<usize> = (0..raw.vertex_count()).collect();
        let reference = raw.build(&identity);
        let renamed = raw.build(&order);
        let a = canonical_code(&reference);
        let b = canonical_code(&renamed);
        prop_assert_eq!(&a, &b, "relabeling {:?} changed the code", order);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        // The reported permutations are consistent: both forms agree on
        // the code, and each perm is a valid permutation.
        let fa = canonical_form(&reference);
        let fb = canonical_form(&renamed);
        prop_assert_eq!(fa.code, fb.code);
        let mut va = fa.vertex_perm.clone();
        va.sort_unstable();
        prop_assert_eq!(va, identity);
    }

    #[test]
    fn single_edge_addition_changes_the_code(input in raw_and_perm(), pick in (0usize..64, 0usize..64)) {
        let (raw, _) = input;
        let identity: Vec<usize> = (0..raw.vertex_count()).collect();
        let reference = raw.build(&identity);
        // Add one extra edge: the edge count differs, so the code must.
        let mut edited = raw.clone();
        edited.extra.push(pick);
        let changed = edited.build(&identity);
        prop_assert_ne!(canonical_code(&reference), canonical_code(&changed));
    }

    #[test]
    fn single_edge_label_flip_changes_the_code(input in raw_and_perm()) {
        let (raw, _) = input;
        let identity: Vec<usize> = (0..raw.vertex_count()).collect();
        let reference = raw.build(&identity);
        // Rebuild with the first edge's label flipped to a label outside
        // the generator's 0..2 alphabet: the edge-label multiset differs.
        let mut b = PatternBuilder::new();
        for (i, &l) in raw.labels.iter().enumerate() {
            b.vertex(&format!("v{i}"), LabelId(l));
        }
        for (k, (src, dst)) in raw.edges().into_iter().enumerate() {
            let label = if k == 0 {
                LabelId(9)
            } else {
                LabelId(raw.edge_labels[k % raw.edge_labels.len()])
            };
            b.edge(src, dst, label).unwrap();
        }
        let edited = b.build().unwrap();
        prop_assert_ne!(canonical_code(&reference), canonical_code(&edited));
    }
}
