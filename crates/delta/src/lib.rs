//! # relgo-delta
//!
//! Mutable data on top of the immutable storage substrate: append-style
//! delta stores for relational tables (new rows + tombstones over
//! `relgo_storage::column`) that merge into fresh immutable snapshots at
//! commit time.
//!
//! The base tables never change — a [`DeltaSet`] accumulates per-table
//! [`TableDelta`]s (inserted rows and primary-key tombstones) on the writer
//! side, invisible to every reader. [`DeltaSet::apply`] validates the delta
//! and produces a **merged** [`Database`]: changed tables are rebuilt
//! column-wise (surviving base rows in base order, then the inserts — the
//! monotonic-remap contract of [`relgo_storage::TableChange`]), while
//! unchanged tables keep sharing their `Arc`s and cached key indexes. The
//! accompanying [`ChangeSummary`] tells downstream consumers (graph index,
//! statistics) exactly which rows moved, so they can refresh incrementally
//! instead of rebuilding; [`refresh_view`] does that for the property-graph
//! view. Epoch stamping and publication live in the session layer
//! (`relgo::Session::begin_ingest`), which swaps the merged snapshot in
//! atomically so in-flight queries keep reading the old epoch.

use relgo_common::{FxHashMap, RelGoError, Result, RowId, Value};
use relgo_graph::GraphView;
use relgo_storage::{Database, Table, TableChange, WriteSet};

pub mod checkpoint;
pub mod wal;

/// The pending delta against one table: appended rows plus primary-key
/// tombstones. Accumulated row-at-a-time, merged column-wise at commit.
#[derive(Debug, Default, Clone)]
pub struct TableDelta {
    inserts: Vec<Vec<Value>>,
    delete_keys: Vec<i64>,
}

impl TableDelta {
    /// Pending inserted rows.
    pub fn inserts(&self) -> &[Vec<Value>] {
        &self.inserts
    }

    /// Pending tombstones (primary-key values).
    pub fn delete_keys(&self) -> &[i64] {
        &self.delete_keys
    }

    /// Whether the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.delete_keys.is_empty()
    }
}

/// What one applied [`DeltaSet`] did, per table — the input every
/// incremental consumer (graph index refresh, statistics refresh, plan-cache
/// invalidation policy) keys off.
#[derive(Debug, Clone, Default)]
pub struct ChangeSummary {
    changes: FxHashMap<String, TableChange>,
}

impl ChangeSummary {
    /// The change applied to `table`, if it was touched.
    pub fn change(&self, table: &str) -> Option<&TableChange> {
        self.changes.get(table)
    }

    /// Whether `table` was touched.
    pub fn changed(&self, table: &str) -> bool {
        self.changes.contains_key(table)
    }

    /// The per-table change map (graph/statistics refresh input).
    pub fn map(&self) -> &FxHashMap<String, TableChange> {
        &self.changes
    }

    /// Touched table names, sorted (deterministic reporting).
    pub fn tables(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.changes.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Total rows inserted across all tables.
    pub fn inserted_rows(&self) -> usize {
        self.changes.values().map(TableChange::inserted).sum()
    }

    /// Total rows deleted across all tables.
    pub fn deleted_rows(&self) -> usize {
        self.changes.values().map(|c| c.deleted().len()).sum()
    }

    /// Fraction of the base database's rows that changed — the staleness
    /// measure deciding incremental vs. full statistics refresh.
    pub fn changed_fraction(&self, base: &Database) -> f64 {
        let changed: usize = self.changes.values().map(TableChange::changed_rows).sum();
        changed as f64 / base.total_rows().max(1) as f64
    }
}

/// A set of pending per-table deltas: the write side of one ingest batch.
#[derive(Debug, Default, Clone)]
pub struct DeltaSet {
    tables: FxHashMap<String, TableDelta>,
}

impl DeltaSet {
    /// Start an empty delta set.
    pub fn new() -> DeltaSet {
        DeltaSet::default()
    }

    /// Queue one row for appending to `table` (validated at
    /// [`DeltaSet::apply`] against the table's schema and primary key).
    pub fn insert(&mut self, table: &str, row: Vec<Value>) {
        self.tables
            .entry(table.to_string())
            .or_default()
            .inserts
            .push(row);
    }

    /// Queue the deletion of the base row of `table` whose primary key
    /// equals `key` (resolved and validated at [`DeltaSet::apply`]).
    pub fn delete(&mut self, table: &str, key: i64) {
        self.tables
            .entry(table.to_string())
            .or_default()
            .delete_keys
            .push(key);
    }

    /// The pending delta of `table`, if any.
    pub fn table_delta(&self, table: &str) -> Option<&TableDelta> {
        self.tables.get(table)
    }

    /// The non-empty per-table deltas, sorted by table name — the
    /// deterministic iteration order shared by [`DeltaSet::apply`] and the
    /// WAL record codec ([`wal`]).
    pub fn tables_sorted(&self) -> Vec<(&str, &TableDelta)> {
        let mut out: Vec<(&str, &TableDelta)> = self
            .tables
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(n, d)| (n.as_str(), d))
            .collect();
        out.sort_unstable_by_key(|(n, _)| *n);
        out
    }

    /// The primary-key write-set of this delta against `base`: every key an
    /// insert introduces or a tombstone removes, per table. This is the
    /// commit's conflict footprint — first-committer-wins MVCC validation
    /// intersects it against the write-sets of commits that published after
    /// the batch's base epoch. Tables without a declared primary key
    /// contribute nothing (their inserts cannot conflict on a key); an
    /// insert whose PK column is non-integer/NULL is rejected here with the
    /// same schema error [`DeltaSet::apply`] would raise.
    pub fn write_set(&self, base: &Database) -> Result<WriteSet> {
        let mut ws = WriteSet::new();
        for (name, delta) in self.tables_sorted() {
            let Some(pk) = base.primary_key(name) else {
                continue;
            };
            let pk_col = base.table(name)?.schema().index_of(pk)?;
            for row in &delta.inserts {
                let Some(k) = row.get(pk_col).and_then(Value::as_int) else {
                    return Err(RelGoError::schema(format!(
                        "insert into {name} has a non-integer/NULL primary key"
                    )));
                };
                ws.add(name, k);
            }
            for &k in &delta.delete_keys {
                ws.add(name, k);
            }
        }
        Ok(ws)
    }

    /// Total queued inserts.
    pub fn inserted_rows(&self) -> usize {
        self.tables.values().map(|d| d.inserts.len()).sum()
    }

    /// Total queued deletions.
    pub fn deleted_rows(&self) -> usize {
        self.tables.values().map(|d| d.delete_keys.len()).sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.tables.values().all(TableDelta::is_empty)
    }

    /// Validate and apply every pending delta against `base`, producing the
    /// merged database and the per-table change summary.
    ///
    /// Validation per touched table: rows must match the schema (arity and
    /// types), tombstone keys must resolve to existing base rows (and not be
    /// deleted twice), and — when the table declares a primary key — insert
    /// keys must be unique among themselves and against the surviving base
    /// rows. The merge is column-wise: survivors are gathered with
    /// [`relgo_storage::Column::take`], inserts appended after, so the
    /// result is bit-identical to a table built from the merged row stream.
    /// Unchanged tables share their `Arc`s (and cached key indexes) with the
    /// base catalog.
    pub fn apply(&self, base: &Database) -> Result<(Database, ChangeSummary)> {
        let mut merged_tables = Vec::new();
        let mut changes = FxHashMap::default();
        // Deterministic application order (map iteration is not).
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort_unstable();
        for name in names {
            let delta = &self.tables[name];
            if delta.is_empty() {
                continue;
            }
            let table = base.table(name)?;
            let (merged, change) = merge_table(table, delta, base.primary_key(name))?;
            merged_tables.push(merged);
            changes.insert(name.clone(), change);
        }
        let mut db = base.clone();
        for t in merged_tables {
            db.replace_table(t)?;
        }
        Ok((db, ChangeSummary { changes }))
    }
}

/// Merge one table's delta: resolve tombstones through the primary key,
/// validate insert keys, and gather the merged columns.
fn merge_table(
    base: &Table,
    delta: &TableDelta,
    primary_key: Option<&str>,
) -> Result<(Table, TableChange)> {
    let name = base.name();
    for (i, row) in delta.inserts.iter().enumerate() {
        if row.len() != base.num_columns() {
            return Err(RelGoError::schema(format!(
                "insert {i} into {name} has {} values, schema expects {}",
                row.len(),
                base.num_columns()
            )));
        }
    }

    // Primary-key bookkeeping: resolve tombstones and check insert keys.
    let mut deleted: Vec<RowId> = Vec::with_capacity(delta.delete_keys.len());
    if let Some(pk) = primary_key {
        let pk_col = base.schema().index_of(pk)?;
        let col = base.column(pk_col);
        let mut by_key: FxHashMap<i64, RowId> = FxHashMap::default();
        by_key.reserve(base.num_rows());
        for r in 0..base.num_rows() as RowId {
            if let Some(k) = col.get_int(r) {
                by_key.insert(k, r);
            }
        }
        for &key in &delta.delete_keys {
            let Some(&row) = by_key.get(&key) else {
                return Err(RelGoError::not_found(format!(
                    "{name}.{pk} = {key} (delete target)"
                )));
            };
            deleted.push(row);
        }
        deleted.sort_unstable();
        deleted.dedup();
        // Surviving keys + insert keys must stay unique.
        let mut live: relgo_common::FxHashSet<i64> = by_key
            .iter()
            .filter(|(_, &r)| deleted.binary_search(&r).is_err())
            .map(|(&k, _)| k)
            .collect();
        for row in &delta.inserts {
            let Some(k) = row[pk_col].as_int() else {
                return Err(RelGoError::schema(format!(
                    "insert into {name} has a non-integer/NULL primary key"
                )));
            };
            if !live.insert(k) {
                return Err(RelGoError::schema(format!(
                    "insert into {name} duplicates primary key {k}"
                )));
            }
        }
    } else if !delta.delete_keys.is_empty() {
        return Err(RelGoError::schema(format!(
            "cannot delete from {name}: no primary key declared"
        )));
    }

    let change = TableChange::new(base.num_rows(), deleted, delta.inserts.len());
    let survivors = change.survivors();
    let mut columns: Vec<_> = (0..base.num_columns())
        .map(|c| base.column(c).take(&survivors))
        .collect();
    for row in &delta.inserts {
        for (col, v) in columns.iter_mut().zip(row) {
            col.push(v.clone())
                .map_err(|e| RelGoError::schema(format!("insert into {name} rejected: {e}")))?;
        }
    }
    let merged = Table::from_columns(name, base.schema().clone(), columns)?;
    Ok((merged, change))
}

/// Incrementally refresh a property-graph view after [`DeltaSet::apply`]:
/// re-binds tables from the merged catalog and updates only the graph-index
/// labels the summary touched (see [`GraphView::rebuild_delta`]); untouched
/// labels keep sharing the previous index's memory.
pub fn refresh_view(
    prev: &GraphView,
    db: &mut Database,
    summary: &ChangeSummary,
) -> Result<GraphView> {
    GraphView::rebuild_delta(prev, db, summary.map())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::DataType;
    use relgo_storage::table::table_of;

    fn base_db() -> Database {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![10.into(), "Tom".into()],
                vec![20.into(), "Bob".into()],
                vec![30.into(), "Eve".into()],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("id", DataType::Int),
                ("p1", DataType::Int),
                ("p2", DataType::Int),
            ],
            vec![vec![0.into(), 10.into(), 20.into()]],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Knows", "id").unwrap();
        db
    }

    #[test]
    fn apply_merges_inserts_and_tombstones() {
        let db = base_db();
        let mut d = DeltaSet::new();
        d.insert("Person", vec![40.into(), "Ada".into()]);
        d.delete("Person", 20);
        d.insert("Knows", vec![1.into(), 30.into(), 10.into()]);
        assert_eq!((d.inserted_rows(), d.deleted_rows()), (2, 1));
        let (merged, summary) = d.apply(&db).unwrap();
        let person = merged.table("Person").unwrap();
        assert_eq!(person.num_rows(), 3);
        assert_eq!(person.row(0), vec![10.into(), "Tom".into()]);
        assert_eq!(person.row(1), vec![30.into(), "Eve".into()]);
        assert_eq!(person.row(2), vec![40.into(), "Ada".into()]);
        assert_eq!(merged.table("Knows").unwrap().num_rows(), 2);
        // Summary reflects both tables; fraction = 4 changed rows / 4 base.
        assert_eq!(summary.tables(), vec!["Knows", "Person"]);
        assert_eq!(summary.inserted_rows(), 2);
        assert_eq!(summary.deleted_rows(), 1);
        assert!((summary.changed_fraction(&db) - 3.0 / 4.0).abs() < 1e-12);
        let pc = summary.change("Person").unwrap();
        assert_eq!(pc.deleted(), &[1]);
        assert_eq!(pc.new_id(2), Some(1));
    }

    #[test]
    fn unchanged_tables_share_arcs() {
        let db = base_db();
        let mut d = DeltaSet::new();
        d.insert("Knows", vec![1.into(), 20.into(), 30.into()]);
        let (merged, summary) = d.apply(&db).unwrap();
        assert!(std::sync::Arc::ptr_eq(
            db.table("Person").unwrap(),
            merged.table("Person").unwrap()
        ));
        assert!(!summary.changed("Person"));
        assert!(summary.changed("Knows"));
    }

    #[test]
    fn validation_rejects_bad_deltas() {
        let db = base_db();
        // Arity mismatch.
        let mut d = DeltaSet::new();
        d.insert("Person", vec![40.into()]);
        assert!(d.apply(&db).is_err());
        // Type mismatch.
        let mut d = DeltaSet::new();
        d.insert("Person", vec!["oops".into(), "Ada".into()]);
        assert!(d.apply(&db).is_err());
        // Duplicate primary key against a surviving base row.
        let mut d = DeltaSet::new();
        d.insert("Person", vec![10.into(), "Dup".into()]);
        assert!(d.apply(&db).is_err());
        // …but re-using a tombstoned key is fine.
        let mut d = DeltaSet::new();
        d.delete("Person", 10);
        d.insert("Person", vec![10.into(), "Reborn".into()]);
        let (merged, _) = d.apply(&db).unwrap();
        assert_eq!(merged.table("Person").unwrap().num_rows(), 3);
        // Duplicate key between two inserts.
        let mut d = DeltaSet::new();
        d.insert("Person", vec![50.into(), "A".into()]);
        d.insert("Person", vec![50.into(), "B".into()]);
        assert!(d.apply(&db).is_err());
        // Deleting a missing key.
        let mut d = DeltaSet::new();
        d.delete("Person", 99);
        assert!(d.apply(&db).is_err());
        // Unknown table.
        let mut d = DeltaSet::new();
        d.insert("Nope", vec![1.into()]);
        assert!(d.apply(&db).is_err());
    }

    #[test]
    fn merged_equals_rebuild_from_scratch() {
        let db = base_db();
        let mut d = DeltaSet::new();
        d.delete("Person", 10);
        d.insert("Person", vec![45.into(), "Gil".into()]);
        d.insert("Person", vec![41.into(), "Hal".into()]);
        let (merged, _) = d.apply(&db).unwrap();
        let expected = table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![20.into(), "Bob".into()],
                vec![30.into(), "Eve".into()],
                vec![45.into(), "Gil".into()],
                vec![41.into(), "Hal".into()],
            ],
        );
        let got = merged.table("Person").unwrap();
        assert_eq!(got.num_rows(), expected.num_rows());
        for r in 0..expected.num_rows() as RowId {
            assert_eq!(got.row(r), expected.row(r));
        }
    }

    #[test]
    fn empty_delta_is_a_noop_summary() {
        let db = base_db();
        let d = DeltaSet::new();
        assert!(d.is_empty());
        let (merged, summary) = d.apply(&db).unwrap();
        assert!(summary.tables().is_empty());
        assert_eq!(summary.changed_fraction(&db), 0.0);
        assert!(std::sync::Arc::ptr_eq(
            db.table("Person").unwrap(),
            merged.table("Person").unwrap()
        ));
    }
}
