//! A std-only write-ahead log for ingest commits.
//!
//! ## Format
//!
//! The log is a flat sequence of length-prefixed, CRC-checked records:
//!
//! ```text
//! [u32 len][u32 crc32(payload)][payload: len bytes] ...
//! ```
//!
//! The payload is a hand-rolled little-endian encoding of one committed
//! epoch: the epoch number followed by the per-table deltas in sorted table
//! order (the same deterministic order [`DeltaSet::apply`] merges in) —
//! inserted rows as tagged [`Value`]s, tombstones as primary-key `i64`s.
//! The vendored serde shim is a no-op marker (no serialization machinery),
//! so the codec lives here.
//!
//! ## Group commit
//!
//! [`Wal::append`] only *stages* the encoded record in an in-memory buffer
//! and returns a sequence number; [`Wal::sync_through`] makes it durable.
//! The first committer to reach `sync_through` becomes the flush **leader**:
//! it takes the whole staged buffer — its own record plus every record
//! staged by concurrent committers in the meantime — and writes it with one
//! `write` + one `fsync`. Committers whose records ride along simply wait on
//! a condvar and return when the leader reports their sequence durable. Under
//! `n` concurrent writers this amortizes the dominant fsync cost: fsyncs per
//! commit drop from 1 toward `1/n` (the `fig_wal` figure measures exactly
//! this).
//!
//! Callers are expected to stage records in commit order (the session layer
//! appends while holding its writer lock), so the byte order of the log is
//! the epoch order and recovery replay is deterministic.
//!
//! ## Recovery
//!
//! [`Wal::open`] scans the log from the start and stops at the first torn
//! record — a short header, a length running past end-of-file, a CRC
//! mismatch, or a structurally undecodable payload. Everything before the
//! tear is returned for replay; the file is truncated to that valid prefix
//! so subsequent appends extend a clean log. A torn tail loses only the
//! suffix of not-fully-flushed commits — never a record before the tear —
//! which is the prefix-consistency contract the crash-recovery differential
//! harness (`tests/wal_recovery.rs`) checks against a never-crashed oracle.

use crate::DeltaSet;
use relgo_common::{RelGoError, Result, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Guard against absurd length prefixes when scanning a corrupt log.
const MAX_RECORD: usize = 1 << 30;

/// WAL behavior knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// `fsync` after every group flush (durability). Off, records are still
    /// written at commit but the OS may lose them on power failure — the
    /// `fig_wal` figure uses this to price the sync itself.
    pub fsync: bool,
    /// Test/bench hook: sleep this long inside every flush, modeling device
    /// latency. Makes group-commit batching deterministic on machines whose
    /// real fsync is faster than thread scheduling.
    pub sync_delay: Option<Duration>,
    /// Test hook: once this process has written this many bytes to the log,
    /// the next flush writes only the prefix up to the threshold and then
    /// aborts the process — producing a genuinely torn record for the
    /// crash-recovery harness.
    pub crash_after_bytes: Option<u64>,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: true,
            sync_delay: None,
            crash_after_bytes: None,
        }
    }
}

/// What one [`Wal::compact_through`] call dropped and kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCompaction {
    /// Records whose epoch was at or below the checkpoint epoch, removed
    /// from the head of the log.
    pub records_dropped: u64,
    /// Bytes those records occupied on disk.
    pub bytes_dropped: u64,
    /// Bytes of log tail kept (records above the checkpoint epoch).
    pub bytes_retained: u64,
    /// Bytes appended to the archive file (0 when no archive was given).
    pub archived_bytes: u64,
}

/// Monotonic WAL counters (records staged, group flushes, fsyncs, bytes
/// written). `syncs < records` under concurrent writers is the observable
/// proof of group commit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records staged via [`Wal::append`].
    pub records: u64,
    /// Group flushes (one leader write each; may cover many records).
    pub flushes: u64,
    /// `fsync` calls (= flushes when [`WalOptions::fsync`] is on, else 0).
    pub syncs: u64,
    /// Payload + header bytes written to the file.
    pub bytes: u64,
}

impl WalStats {
    /// Counter deltas since `before`.
    pub fn since(&self, before: &WalStats) -> WalStats {
        WalStats {
            records: self.records - before.records,
            flushes: self.flushes - before.flushes,
            syncs: self.syncs - before.syncs,
            bytes: self.bytes - before.bytes,
        }
    }

    /// The counters as stable `(name, value)` pairs for metrics export
    /// (the names become series suffixes in the scrape surface).
    pub fn counters(&self) -> [(&'static str, u64); 4] {
        [
            ("records", self.records),
            ("flushes", self.flushes),
            ("syncs", self.syncs),
            ("bytes", self.bytes),
        ]
    }
}

/// One decoded log record: the delta a commit applied and the epoch it
/// published.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The epoch the commit published.
    pub epoch: u64,
    /// The committed delta.
    pub delta: DeltaSet,
}

/// What [`Wal::open`] recovered from an existing log.
#[derive(Debug, Clone, Default)]
pub struct WalRecovery {
    /// The intact records, in log (= epoch) order.
    pub records: Vec<WalRecord>,
    /// Bytes of valid log retained.
    pub bytes: u64,
    /// Bytes of torn tail truncated away (0 for a clean log).
    pub truncated_bytes: u64,
}

struct WalState {
    /// Encoded records staged but not yet flushed.
    staged: Vec<u8>,
    /// Sequence number the next [`Wal::append`] hands out (starts at 1).
    next_seq: u64,
    /// Every sequence `<= durable_seq` has been flushed (and fsynced when
    /// enabled).
    durable_seq: u64,
    /// A flush leader is currently writing.
    flushing: bool,
    stats: WalStats,
}

/// An append-only, CRC-checked, group-committed write-ahead log.
pub struct Wal {
    /// Touched only by the flush leader (the `flushing` flag serializes
    /// leaders), so this lock is uncontended.
    file: Mutex<File>,
    state: Mutex<WalState>,
    flushed: Condvar,
    options: WalOptions,
    path: PathBuf,
    /// Bytes written by this process (drives `crash_after_bytes`).
    written: AtomicU64,
    /// Valid bytes currently on disk (valid prefix at open, plus every
    /// flush, minus what compaction truncates). Drives checkpoint policy
    /// and the `relgo_wal_bytes_since_checkpoint` gauge.
    disk_len: AtomicU64,
}

impl Wal {
    /// Open (or create) the log at `path`, recovering its valid prefix.
    ///
    /// A torn tail — short header, over-long length, CRC mismatch, or an
    /// undecodable payload — is truncated away; the decoded records before
    /// it come back in the [`WalRecovery`] for the caller to replay.
    pub fn open(path: impl AsRef<Path>, options: WalOptions) -> Result<(Wal, WalRecovery)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read", &e))?;

        let mut records = Vec::new();
        let mut off = 0usize;
        // Stops at the first sign of a torn tail: a short header is a clean
        // end-of-file or an interrupted header write, everything else below
        // breaks explicitly.
        while let Some(header) = bytes.get(off..off + 8) {
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if len > MAX_RECORD {
                break; // corrupt length prefix
            }
            let Some(payload) = bytes.get(off + 8..off + 8 + len) else {
                break; // record runs past end-of-file: torn write
            };
            if crc32(payload) != crc {
                break; // bit rot or torn payload
            }
            let Ok(record) = decode_payload(payload) else {
                break; // CRC matched but the structure is bad: treat as torn
            };
            records.push(record);
            off += 8 + len;
        }
        let truncated = (bytes.len() - off) as u64;
        if truncated > 0 {
            file.set_len(off as u64)
                .map_err(|e| io_err("truncate", &e))?;
        }
        file.seek(SeekFrom::Start(off as u64))
            .map_err(|e| io_err("seek", &e))?;

        let recovery = WalRecovery {
            records,
            bytes: off as u64,
            truncated_bytes: truncated,
        };
        let wal = Wal {
            file: Mutex::new(file),
            state: Mutex::new(WalState {
                staged: Vec::new(),
                next_seq: 1,
                durable_seq: 0,
                flushing: false,
                stats: WalStats::default(),
            }),
            flushed: Condvar::new(),
            options,
            path,
            written: AtomicU64::new(0),
            disk_len: AtomicU64::new(off as u64),
        };
        Ok((wal, recovery))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current counters.
    pub fn stats(&self) -> WalStats {
        self.state.lock().unwrap().stats
    }

    /// Valid log bytes currently on disk. Because compaction truncates the
    /// log behind a checkpoint, this is also "WAL bytes since the last
    /// checkpoint" for a checkpointed session.
    pub fn disk_len(&self) -> u64 {
        self.disk_len.load(Ordering::Relaxed)
    }

    /// Stage one record and return its sequence number. Staging is pure
    /// memory — durability comes from [`Wal::sync_through`]. Callers must
    /// stage in commit order (the session appends under its writer lock).
    pub fn append(&self, epoch: u64, delta: &DeltaSet) -> u64 {
        let payload = encode_payload(epoch, delta);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.staged.extend_from_slice(&frame);
        st.stats.records += 1;
        seq
    }

    /// Block until every record staged up to `seq` is flushed (and fsynced,
    /// when enabled). Group commit: the first caller to find no flush in
    /// progress becomes the leader and writes *all* currently staged bytes
    /// with one write + one sync; callers whose records ride along just
    /// wait for the leader's report.
    pub fn sync_through(&self, seq: u64) -> Result<()> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.durable_seq >= seq {
                return Ok(());
            }
            if st.flushing {
                st = self.flushed.wait(st).unwrap();
                continue;
            }
            // Become the leader: take everything staged so far.
            let buf = std::mem::take(&mut st.staged);
            let through = st.next_seq - 1;
            st.flushing = true;
            drop(st);
            let outcome = self.flush(&buf);
            st = self.state.lock().unwrap();
            st.flushing = false;
            match outcome {
                Ok(()) => {
                    st.durable_seq = st.durable_seq.max(through);
                    st.stats.flushes += 1;
                    st.stats.bytes += buf.len() as u64;
                    if self.options.fsync {
                        st.stats.syncs += 1;
                    }
                    self.flushed.notify_all();
                }
                Err(e) => {
                    self.flushed.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// The leader's write + sync (only one leader runs at a time).
    fn flush(&self, buf: &[u8]) -> Result<()> {
        let mut file = self.file.lock().unwrap();
        if let Some(limit) = self.options.crash_after_bytes {
            let written = self.written.load(Ordering::Relaxed);
            if written + buf.len() as u64 > limit {
                // Tear the record: write the prefix up to the budget, make
                // sure it reaches the file, and die like a power cut.
                let keep = limit.saturating_sub(written) as usize;
                let _ = file.write_all(&buf[..keep]);
                let _ = file.sync_all();
                std::process::abort();
            }
        }
        file.write_all(buf).map_err(|e| io_err("write", &e))?;
        self.written.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.disk_len.fetch_add(buf.len() as u64, Ordering::Relaxed);
        if !buf.is_empty() {
            if let Some(delay) = self.options.sync_delay {
                std::thread::sleep(delay);
            }
        }
        if self.options.fsync {
            file.sync_all().map_err(|e| io_err("fsync", &e))?;
        }
        Ok(())
    }

    /// Truncate-behind-checkpoint log compaction: drop every record whose
    /// epoch is `<= epoch` from the head of the log, keeping only the tail
    /// a checkpoint-based recovery still needs to replay.
    ///
    /// The caller names an epoch already captured by a durable checkpoint.
    /// Compaction quiesces flushing by becoming the flush leader itself (so
    /// staged records are on disk before the log is rewritten), then writes
    /// the surviving tail to a sibling temp file, fsyncs it, and atomically
    /// renames it over the log. A crash before the rename leaves the old
    /// log (recovery skips the already-checkpointed prefix); a crash after
    /// leaves exactly the tail — never a torn log.
    ///
    /// `archive_to`, when given, appends the dropped record-aligned prefix
    /// to that file before truncation, so the full commit history remains
    /// replayable offline (the archive is itself a valid WAL).
    pub fn compact_through(&self, epoch: u64, archive_to: Option<&Path>) -> Result<WalCompaction> {
        let mut st = self.state.lock().unwrap();
        while st.flushing {
            st = self.flushed.wait(st).unwrap();
        }
        // Become the leader: compaction must see every staged record on
        // disk, so it flushes the buffer itself as part of the rewrite.
        let staged = std::mem::take(&mut st.staged);
        let through = st.next_seq - 1;
        st.flushing = true;
        drop(st);

        let outcome = self.compact_inner(epoch, &staged, archive_to);

        let mut st = self.state.lock().unwrap();
        st.flushing = false;
        if outcome.is_ok() {
            st.durable_seq = st.durable_seq.max(through);
            if !staged.is_empty() {
                st.stats.flushes += 1;
                st.stats.bytes += staged.len() as u64;
                if self.options.fsync {
                    st.stats.syncs += 1;
                }
            }
        }
        self.flushed.notify_all();
        outcome
    }

    /// The compaction body; runs as the (sole) flush leader.
    fn compact_inner(
        &self,
        epoch: u64,
        staged: &[u8],
        archive_to: Option<&Path>,
    ) -> Result<WalCompaction> {
        let mut file = self.file.lock().unwrap();
        if !staged.is_empty() {
            file.write_all(staged).map_err(|e| io_err("write", &e))?;
            self.disk_len
                .fetch_add(staged.len() as u64, Ordering::Relaxed);
            if self.options.fsync {
                file.sync_all().map_err(|e| io_err("fsync", &e))?;
            }
        }
        file.seek(SeekFrom::Start(0))
            .map_err(|e| io_err("seek", &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read", &e))?;

        // Find the first record the checkpoint does not cover; everything
        // before it is the droppable prefix. Only fully-valid records are
        // walked — a torn tail (possible only after an unflushed crash, not
        // in this live process) is conservatively kept.
        let mut off = 0usize;
        let mut dropped = 0u64;
        while let Some(header) = bytes.get(off..off + 8) {
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if len > MAX_RECORD {
                break;
            }
            let Some(payload) = bytes.get(off + 8..off + 8 + len) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            let Ok(record) = decode_payload(payload) else {
                break;
            };
            if record.epoch > epoch {
                break;
            }
            dropped += 1;
            off += 8 + len;
        }
        if off == 0 {
            // Nothing to drop; leave the log alone.
            file.seek(SeekFrom::End(0))
                .map_err(|e| io_err("seek", &e))?;
            return Ok(WalCompaction {
                bytes_retained: bytes.len() as u64,
                ..WalCompaction::default()
            });
        }

        let archived_bytes = match archive_to {
            Some(archive) => {
                let mut f = OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(archive)
                    .map_err(|e| io_err("archive open", &e))?;
                f.write_all(&bytes[..off])
                    .map_err(|e| io_err("archive write", &e))?;
                f.sync_all().map_err(|e| io_err("archive fsync", &e))?;
                off as u64
            }
            None => 0,
        };

        // Rewrite the log as tail-only: temp + fsync + atomic rename, then
        // swap the live handle to the new file.
        let tail = &bytes[off..];
        let mut tmp_name = self.path.clone().into_os_string();
        tmp_name.push(".compact.tmp");
        let tmp = PathBuf::from(tmp_name);
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("compact create", &e))?;
            f.write_all(tail).map_err(|e| io_err("compact write", &e))?;
            f.sync_all().map_err(|e| io_err("compact fsync", &e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err("compact rename", &e))?;
        if let Some(dir) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        let mut new_file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("compact reopen", &e))?;
        new_file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &e))?;
        *file = new_file;
        self.disk_len.store(tail.len() as u64, Ordering::Relaxed);

        Ok(WalCompaction {
            records_dropped: dropped,
            bytes_dropped: off as u64,
            bytes_retained: tail.len() as u64,
            archived_bytes,
        })
    }
}

fn io_err(what: &str, e: &std::io::Error) -> RelGoError {
    RelGoError::execution(format!("wal {what} failed: {e}"))
}

// --------------------------------------------------------------------------
// Record codec (hand-rolled: the vendored serde shim has no machinery).
// --------------------------------------------------------------------------

fn encode_payload(epoch: u64, delta: &DeltaSet) -> Vec<u8> {
    let tables = delta.tables_sorted();
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for (name, td) in tables {
        put_bytes(&mut out, name.as_bytes());
        out.extend_from_slice(&(td.inserts().len() as u32).to_le_bytes());
        for row in td.inserts() {
            out.extend_from_slice(&(row.len() as u32).to_le_bytes());
            for v in row {
                put_value(&mut out, v);
            }
        }
        out.extend_from_slice(&(td.delete_keys().len() as u32).to_le_bytes());
        for &k in td.delete_keys() {
            out.extend_from_slice(&k.to_le_bytes());
        }
    }
    out
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_bytes(out, s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
        Value::Date(d) => {
            out.push(5);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord> {
    let mut r = Reader {
        buf: payload,
        off: 0,
    };
    let epoch = r.u64()?;
    let n_tables = r.u32()? as usize;
    let mut delta = DeltaSet::new();
    for _ in 0..n_tables {
        let name = r.string()?;
        let n_inserts = r.u32()? as usize;
        for _ in 0..n_inserts {
            let n_vals = r.u32()? as usize;
            let mut row = Vec::with_capacity(n_vals.min(64));
            for _ in 0..n_vals {
                row.push(r.value()?);
            }
            delta.insert(&name, row);
        }
        let n_deletes = r.u32()? as usize;
        for _ in 0..n_deletes {
            delta.delete(&name, r.i64()?);
        }
    }
    if r.off != payload.len() {
        return Err(RelGoError::execution("wal record has trailing bytes"));
    }
    Ok(WalRecord { epoch, delta })
}

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) off: usize,
}

impl Reader<'_> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&[u8]> {
        let Some(b) = self.buf.get(self.off..self.off + n) else {
            return Err(RelGoError::execution("wal record truncated"));
        };
        self.off += n;
        Ok(b)
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn string(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| RelGoError::execution("wal record has invalid utf-8"))
    }

    pub(crate) fn value(&mut self) -> Result<Value> {
        Ok(match self.take(1)?[0] {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Str(self.string()?.into()),
            4 => Value::Bool(self.take(1)?[0] != 0),
            5 => Value::Date(self.i64()?),
            t => {
                return Err(RelGoError::execution(format!(
                    "wal record has unknown value tag {t}"
                )))
            }
        })
    }
}

// --------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected). Table-driven, built at compile time.
// --------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of `data` (IEEE polynomial — the checksum guarding each record).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn temp_wal(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "relgo_wal_test_{}_{tag}_{n}.wal",
            std::process::id()
        ))
    }

    fn sample_delta(i: i64) -> DeltaSet {
        let mut d = DeltaSet::new();
        d.insert(
            "Person",
            vec![
                Value::Int(i),
                Value::str(format!("p{i}")),
                Value::Date(18_000 + i),
                Value::Float(i as f64 / 3.0),
                Value::Bool(i % 2 == 0),
                Value::Null,
            ],
        );
        d.insert(
            "Knows",
            vec![Value::Int(i * 10), Value::Int(0), Value::Int(1)],
        );
        d.delete("Likes", i + 100);
        d
    }

    fn deltas_equal(a: &DeltaSet, b: &DeltaSet) -> bool {
        let (ta, tb) = (a.tables_sorted(), b.tables_sorted());
        ta.len() == tb.len()
            && ta.iter().zip(&tb).all(|((na, da), (nb, db))| {
                na == nb && da.inserts() == db.inserts() && da.delete_keys() == db.delete_keys()
            })
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = temp_wal("roundtrip");
        let (wal, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncated_bytes, 0);
        for i in 0..5 {
            let seq = wal.append(i as u64 + 1, &sample_delta(i));
            wal.sync_through(seq).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.records, 5);
        assert!(stats.bytes > 0);
        drop(wal);

        let (_wal, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.truncated_bytes, 0);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.epoch, i as u64 + 1);
            assert!(
                deltas_equal(&r.delta, &sample_delta(i as i64)),
                "record {i}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_recovers_to_nothing() {
        let path = temp_wal("empty");
        std::fs::write(&path, b"").unwrap();
        let (wal, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!((rec.bytes, rec.truncated_bytes), (0, 0));
        // Appending to the recovered-empty log works.
        let seq = wal.append(1, &sample_delta(0));
        wal.sync_through(seq).unwrap();
        drop(wal);
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_record_recovers_to_last_intact() {
        let path = temp_wal("torn");
        let (wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        for i in 0..3 {
            let seq = wal.append(i as u64 + 1, &sample_delta(i));
            wal.sync_through(seq).unwrap();
        }
        drop(wal);
        // Tear the last record mid-payload.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 2, "torn tail drops only the last record");
        assert!(rec.truncated_bytes > 0);
        assert_eq!(rec.records[1].epoch, 2);
        // The truncation is persisted: a second open is clean.
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_crc_byte_recovers_to_last_intact() {
        let path = temp_wal("crc");
        let (wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        let mut offsets = Vec::new();
        for i in 0..3 {
            offsets.push(std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
            let seq = wal.append(i as u64 + 1, &sample_delta(i));
            wal.sync_through(seq).unwrap();
        }
        drop(wal);
        // Flip one byte inside the last record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last_payload = offsets[2] as usize + 8;
        bytes[last_payload + 4] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 2, "CRC mismatch drops the corrupt tail");
        assert!(rec.truncated_bytes > 0);

        // Corrupting the stored CRC itself (not the payload) is equally
        // fatal for that record.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_crc = offsets[1] as usize + 4;
        bytes[second_crc] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_extend_a_recovered_log() {
        let path = temp_wal("extend");
        let (wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        let seq = wal.append(1, &sample_delta(0));
        wal.sync_through(seq).unwrap();
        drop(wal);
        let (wal, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 1);
        let seq = wal.append(2, &sample_delta(1));
        wal.sync_through(seq).unwrap();
        drop(wal);
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[1].epoch, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_batches_concurrent_syncs() {
        let path = temp_wal("group");
        let options = WalOptions {
            sync_delay: Some(Duration::from_millis(10)),
            ..WalOptions::default()
        };
        let (wal, _) = Wal::open(&path, options).unwrap();
        let writers = 4;
        let per = 4;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let wal = &wal;
                scope.spawn(move || {
                    for i in 0..per {
                        let seq = wal.append((w * per + i) as u64 + 1, &sample_delta(i as i64));
                        wal.sync_through(seq).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.records, (writers * per) as u64);
        assert_eq!(stats.syncs, stats.flushes);
        assert!(
            stats.syncs < stats.records,
            "group commit must batch concurrent records into fewer fsyncs \
             ({} syncs for {} records)",
            stats.syncs,
            stats.records
        );
        drop(wal);
        // Everything the writers considered durable is on disk.
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), writers * per);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_checkpointed_prefix_and_keeps_tail() {
        let path = temp_wal("compact");
        let (wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        for i in 0..6 {
            let seq = wal.append(i as u64 + 1, &sample_delta(i));
            wal.sync_through(seq).unwrap();
        }
        let before = wal.disk_len();
        let c = wal.compact_through(4, None).unwrap();
        assert_eq!(c.records_dropped, 4);
        assert!(c.bytes_dropped > 0);
        assert_eq!(c.bytes_dropped + c.bytes_retained, before);
        assert_eq!(wal.disk_len(), c.bytes_retained);
        assert!(wal.disk_len() < before, "the log must shrink on disk");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), c.bytes_retained);

        // The surviving tail is exactly epochs 5..=6 and appends extend it.
        let seq = wal.append(7, &sample_delta(6));
        wal.sync_through(seq).unwrap();
        drop(wal);
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        let epochs: Vec<u64> = rec.records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![5, 6, 7]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_flushes_staged_records_before_rewriting() {
        let path = temp_wal("compact_staged");
        let (wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        for i in 0..3 {
            // Staged only: no sync_through before compaction.
            wal.append(i as u64 + 1, &sample_delta(i));
        }
        let c = wal.compact_through(2, None).unwrap();
        assert_eq!(c.records_dropped, 2);
        drop(wal);
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        let epochs: Vec<u64> = rec.records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![3], "staged records survive compaction");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_with_nothing_to_drop_is_a_no_op() {
        let path = temp_wal("compact_noop");
        let (wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        for i in 0..3 {
            let seq = wal.append(i as u64 + 10, &sample_delta(i));
            wal.sync_through(seq).unwrap();
        }
        let before = wal.disk_len();
        let c = wal.compact_through(5, None).unwrap();
        assert_eq!((c.records_dropped, c.bytes_dropped), (0, 0));
        assert_eq!(c.bytes_retained, before);
        // The log still appends and replays cleanly.
        let seq = wal.append(13, &sample_delta(3));
        wal.sync_through(seq).unwrap();
        drop(wal);
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_archive_preserves_the_dropped_history() {
        let path = temp_wal("compact_archive");
        let archive = temp_wal("compact_archive_out");
        let (wal, _) = Wal::open(&path, WalOptions::default()).unwrap();
        for i in 0..5 {
            let seq = wal.append(i as u64 + 1, &sample_delta(i));
            wal.sync_through(seq).unwrap();
        }
        let c = wal.compact_through(3, Some(&archive)).unwrap();
        assert_eq!(c.records_dropped, 3);
        assert_eq!(c.archived_bytes, c.bytes_dropped);
        // The archive is itself a valid WAL holding exactly the dropped
        // prefix; a second compaction appends to it.
        let (_a, rec) = Wal::open(&archive, WalOptions::default()).unwrap();
        let epochs: Vec<u64> = rec.records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3]);
        wal.compact_through(4, Some(&archive)).unwrap();
        drop(wal);
        let (_a, rec) = Wal::open(&archive, WalOptions::default()).unwrap();
        let epochs: Vec<u64> = rec.records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3, 4]);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&archive).ok();
    }

    #[test]
    fn fsync_off_still_writes_records() {
        let path = temp_wal("nofsync");
        let options = WalOptions {
            fsync: false,
            ..WalOptions::default()
        };
        let (wal, _) = Wal::open(&path, options).unwrap();
        let seq = wal.append(1, &sample_delta(0));
        wal.sync_through(seq).unwrap();
        let stats = wal.stats();
        assert_eq!((stats.syncs, stats.flushes), (0, 1));
        drop(wal);
        let (_w, rec) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
