//! Versioned, CRC-checked on-disk checkpoints of a full epoch's tables.
//!
//! A checkpoint snapshots one published epoch of a [`Database`] — every
//! table (schema + rows, all six [`relgo_common::Value`] types), the primary-key map, and
//! the foreign keys — so recovery can load the snapshot and replay only the
//! WAL tail behind it instead of the full commit history. Key indexes are
//! derived data: the decoder re-warms one unique index per primary key,
//! which also re-validates key uniqueness on the way in.
//!
//! ## File format
//!
//! ```text
//! [8B magic "RGCKPT1\n"][u32 crc32(payload)][u64 payload len][payload]
//! ```
//!
//! The payload reuses the WAL's hand-rolled little-endian codec (the
//! vendored serde shim is a no-op): epoch, then each table in registration
//! order as `name, fields (name + type tag), row count, row-major tagged
//! values`, then the primary-key pairs and foreign-key quads.
//!
//! ## Atomicity
//!
//! [`CheckpointStore::write`] writes a sibling temp file, fsyncs it,
//! atomically renames it to `<wal>.ckpt.<epoch>`, and fsyncs the directory.
//! A crash at any point leaves either the old checkpoint set or the new one
//! — never a torn visible checkpoint, because torn bytes only ever live
//! under the temp name, which the loader ignores. [`CheckpointCrash`] lets
//! the crash-recovery harness kill the process inside each phase to prove
//! it. [`CheckpointStore::load_newest`] additionally tolerates a corrupted
//! newest file (bit rot after rename) by falling back to the previous
//! checkpoint, which retention keeps around for exactly this reason.

use crate::wal::{crc32, put_bytes, put_value, Reader};
use relgo_common::{DataType, Field, RelGoError, Result, Schema};
use relgo_storage::{Database, TableBuilder};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Leading bytes of every checkpoint file; the trailing digit is the
/// format version.
pub const MAGIC: &[u8; 8] = b"RGCKPT1\n";

/// Fault-injection points for the crash-recovery harness: abort the
/// process inside a chosen checkpoint phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCrash {
    /// Die mid-temp-write: only the first `n` bytes of the temp file reach
    /// disk (clamped to tear the file even for large `n`).
    MidTempWrite(u64),
    /// Die after the temp file is fully written but before it is fsynced
    /// and renamed — models a power cut during the fsync.
    BeforeRename,
    /// Die right after the atomic rename: the checkpoint is durable but
    /// the caller's WAL truncation never runs.
    AfterRename,
}

/// What [`CheckpointStore::write`] produced.
#[derive(Debug, Clone)]
pub struct WrittenCheckpoint {
    /// The epoch the snapshot captures.
    pub epoch: u64,
    /// Final (post-rename) path of the checkpoint file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
}

/// What [`CheckpointStore::load_newest`] recovered.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The epoch the snapshot captures.
    pub epoch: u64,
    /// The reconstructed database (primary-key indexes re-warmed).
    pub db: Database,
    /// Path the snapshot was loaded from.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Newer checkpoint files that were rejected as corrupt before this
    /// one loaded (0 on the happy path).
    pub rejected: usize,
}

/// What [`CheckpointStore::retain`] did with superseded checkpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Checkpoint files deleted.
    pub removed: usize,
    /// Checkpoint files moved into the archive directory.
    pub archived: usize,
}

/// A family of checkpoint files living next to a WAL: `<wal>.ckpt.<epoch>`,
/// plus one `<wal>.ckpt.tmp` scratch name for in-flight writes.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    prefix: String,
}

impl CheckpointStore {
    /// The store for checkpoints of the log at `wal_path`.
    pub fn for_wal(wal_path: impl AsRef<Path>) -> CheckpointStore {
        let wal_path = wal_path.as_ref();
        let dir = match wal_path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let file = wal_path
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| "wal".to_string());
        CheckpointStore {
            dir,
            prefix: format!("{file}.ckpt."),
        }
    }

    fn path_for(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("{}{epoch:020}", self.prefix))
    }

    fn temp_path(&self) -> PathBuf {
        self.dir.join(format!("{}tmp", self.prefix))
    }

    /// Existing checkpoint files as `(epoch, path)`, ascending by epoch.
    /// Temp files and foreign names are ignored.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return Ok(out), // no directory yet: no checkpoints
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(suffix) = name.strip_prefix(&self.prefix) else {
                continue;
            };
            let Ok(epoch) = suffix.parse::<u64>() else {
                continue; // the temp file or an unrelated sibling
            };
            out.push((epoch, entry.path()));
        }
        out.sort_unstable_by_key(|(e, _)| *e);
        Ok(out)
    }

    /// Snapshot `db` at `epoch` via write-to-temp + fsync + atomic rename +
    /// directory fsync. `crash` is the harness's fault-injection hook.
    pub fn write(
        &self,
        epoch: u64,
        db: &Database,
        crash: Option<CheckpointCrash>,
    ) -> Result<WrittenCheckpoint> {
        let image = encode_checkpoint(epoch, db);
        let tmp = self.temp_path();
        let mut f = File::create(&tmp).map_err(|e| ckpt_err("create temp", &e))?;
        if let Some(CheckpointCrash::MidTempWrite(n)) = crash {
            // Tear the temp file: write a strict prefix, make sure it is
            // the bytes a power cut would leave, and die.
            let keep = (n as usize).min(image.len().saturating_sub(1));
            let _ = f.write_all(&image[..keep]);
            let _ = f.sync_all();
            std::process::abort();
        }
        f.write_all(&image)
            .map_err(|e| ckpt_err("write temp", &e))?;
        if crash == Some(CheckpointCrash::BeforeRename) {
            std::process::abort();
        }
        f.sync_all().map_err(|e| ckpt_err("fsync temp", &e))?;
        drop(f);
        let path = self.path_for(epoch);
        std::fs::rename(&tmp, &path).map_err(|e| ckpt_err("rename", &e))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        if crash == Some(CheckpointCrash::AfterRename) {
            std::process::abort();
        }
        Ok(WrittenCheckpoint {
            epoch,
            path,
            bytes: image.len() as u64,
        })
    }

    /// Load the newest checkpoint that decodes cleanly, skipping (and
    /// counting) corrupt newer files — a flipped CRC byte, a truncated
    /// header, or a zero-length file all fall back to the checkpoint
    /// before them. `Ok(None)` means no valid checkpoint exists.
    pub fn load_newest(&self) -> Result<Option<LoadedCheckpoint>> {
        let mut list = self.list()?;
        let mut rejected = 0usize;
        while let Some((epoch, path)) = list.pop() {
            let Ok(bytes) = std::fs::read(&path) else {
                rejected += 1;
                continue;
            };
            match decode_checkpoint(&bytes) {
                Ok((e, db)) if e == epoch => {
                    return Ok(Some(LoadedCheckpoint {
                        epoch,
                        db,
                        path,
                        bytes: bytes.len() as u64,
                        rejected,
                    }))
                }
                _ => rejected += 1,
            }
        }
        Ok(None)
    }

    /// Keep the `keep` newest checkpoint files; delete older ones, or move
    /// them into `archive_dir` when given. Keeping at least 2 preserves the
    /// fallback target [`CheckpointStore::load_newest`] relies on if the
    /// newest file rots after its rename.
    pub fn retain(&self, keep: usize, archive_dir: Option<&Path>) -> Result<RetentionReport> {
        let mut list = self.list()?;
        let mut report = RetentionReport::default();
        if list.len() <= keep {
            return Ok(report);
        }
        let drop_n = list.len() - keep;
        for (_, path) in list.drain(..drop_n) {
            match archive_dir {
                Some(dir) => {
                    std::fs::create_dir_all(dir).map_err(|e| ckpt_err("archive mkdir", &e))?;
                    let dest = dir.join(path.file_name().unwrap_or_default());
                    if std::fs::rename(&path, &dest).is_err() {
                        // Cross-device fallback: copy, then remove.
                        std::fs::copy(&path, &dest).map_err(|e| ckpt_err("archive copy", &e))?;
                        std::fs::remove_file(&path).map_err(|e| ckpt_err("archive rm", &e))?;
                    }
                    report.archived += 1;
                }
                None => {
                    std::fs::remove_file(&path).map_err(|e| ckpt_err("remove", &e))?;
                    report.removed += 1;
                }
            }
        }
        Ok(report)
    }
}

fn ckpt_err(what: &str, e: &std::io::Error) -> RelGoError {
    RelGoError::execution(format!("checkpoint {what} failed: {e}"))
}

fn corrupt(what: &str) -> RelGoError {
    RelGoError::execution(format!("checkpoint corrupt: {what}"))
}

// --------------------------------------------------------------------------
// Codec.
// --------------------------------------------------------------------------

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    }
}

fn dtype_from(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Date,
        t => return Err(corrupt(&format!("unknown data type tag {t}"))),
    })
}

/// Encode the complete checkpoint file image (header + payload) for `db`
/// at `epoch`.
pub fn encode_checkpoint(epoch: u64, db: &Database) -> Vec<u8> {
    let mut payload = Vec::with_capacity(256);
    payload.extend_from_slice(&epoch.to_le_bytes());
    let tables: Vec<_> = db.tables().collect();
    payload.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for table in &tables {
        put_bytes(&mut payload, table.name().as_bytes());
        let fields = table.schema().fields();
        payload.extend_from_slice(&(fields.len() as u32).to_le_bytes());
        for field in fields {
            put_bytes(&mut payload, field.name.as_bytes());
            payload.push(dtype_tag(field.dtype));
        }
        payload.extend_from_slice(&(table.num_rows() as u64).to_le_bytes());
        for r in 0..table.num_rows() as u32 {
            for v in table.row(r) {
                put_value(&mut payload, &v);
            }
        }
    }
    let pks: Vec<(&str, &str)> = tables
        .iter()
        .filter_map(|t| db.primary_key(t.name()).map(|pk| (t.name(), pk)))
        .collect();
    payload.extend_from_slice(&(pks.len() as u32).to_le_bytes());
    for (table, column) in pks {
        put_bytes(&mut payload, table.as_bytes());
        put_bytes(&mut payload, column.as_bytes());
    }
    let fks = db.foreign_keys();
    payload.extend_from_slice(&(fks.len() as u32).to_le_bytes());
    for fk in fks {
        put_bytes(&mut payload, fk.table.as_bytes());
        put_bytes(&mut payload, fk.column.as_bytes());
        put_bytes(&mut payload, fk.ref_table.as_bytes());
        put_bytes(&mut payload, fk.ref_column.as_bytes());
    }

    let mut image = Vec::with_capacity(MAGIC.len() + 12 + payload.len());
    image.extend_from_slice(MAGIC);
    image.extend_from_slice(&crc32(&payload).to_le_bytes());
    image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    image.extend_from_slice(&payload);
    image
}

/// Decode a checkpoint file image back into `(epoch, Database)`, verifying
/// the magic, the length, and the CRC before touching the payload, and
/// re-warming one key index per primary key afterwards.
pub fn decode_checkpoint(image: &[u8]) -> Result<(u64, Database)> {
    let header_len = MAGIC.len() + 12;
    let Some(header) = image.get(..header_len) else {
        return Err(corrupt("truncated header"));
    };
    if &header[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let crc = u32::from_le_bytes(header[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
    let len = u64::from_le_bytes(header[MAGIC.len() + 4..header_len].try_into().unwrap());
    let Some(payload) = image.get(header_len..) else {
        return Err(corrupt("truncated payload"));
    };
    if payload.len() as u64 != len {
        return Err(corrupt("payload length mismatch"));
    }
    if crc32(payload) != crc {
        return Err(corrupt("crc mismatch"));
    }

    let mut r = Reader {
        buf: payload,
        off: 0,
    };
    let epoch = r.u64()?;
    let n_tables = r.u32()? as usize;
    let mut db = Database::new();
    for _ in 0..n_tables {
        let name = r.string()?;
        let n_fields = r.u32()? as usize;
        let mut fields = Vec::with_capacity(n_fields.min(64));
        for _ in 0..n_fields {
            let fname = r.string()?;
            let tag = r.take(1)?[0];
            fields.push(Field::new(fname, dtype_from(tag)?));
        }
        let schema = Schema::new(fields)?;
        let n_rows = r.u64()? as usize;
        let mut builder = TableBuilder::new(&name, schema.clone());
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(schema.len());
            for _ in 0..schema.len() {
                row.push(r.value()?);
            }
            builder.push_row(row)?;
        }
        db.add_table(builder.finish());
    }
    let n_pks = r.u32()? as usize;
    let mut pks = Vec::with_capacity(n_pks.min(64));
    for _ in 0..n_pks {
        let table = r.string()?;
        let column = r.string()?;
        db.set_primary_key(&table, &column)?;
        pks.push((table, column));
    }
    // Foreign keys validate against primary keys, so they decode after the
    // whole primary-key map is in place.
    let n_fks = r.u32()? as usize;
    for _ in 0..n_fks {
        let table = r.string()?;
        let column = r.string()?;
        let ref_table = r.string()?;
        let ref_column = r.string()?;
        db.add_foreign_key(&table, &column, &ref_table, &ref_column)?;
    }
    if r.off != payload.len() {
        return Err(corrupt("trailing bytes"));
    }
    // Re-warm the unique key indexes the snapshot's metadata names; this
    // also re-validates primary-key uniqueness of the decoded rows.
    for (table, column) in &pks {
        db.key_index(table, column)?;
    }
    Ok((epoch, db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::Value;
    use relgo_storage::table::table_of;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "relgo_ckpt_test_{}_{tag}_{n}.wal",
            std::process::id()
        ))
    }

    fn cleanup(store: &CheckpointStore) {
        for (_, path) in store.list().unwrap() {
            std::fs::remove_file(path).ok();
        }
    }

    /// A database exercising all six `Value` variants, non-ASCII strings,
    /// an empty table, a primary key, and a foreign key.
    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[
                ("person_id", DataType::Int),
                ("name", DataType::Str),
                ("score", DataType::Float),
                ("active", DataType::Bool),
                ("joined", DataType::Date),
                ("note", DataType::Str),
            ],
            vec![
                vec![
                    Value::Int(1),
                    Value::str("Ada"),
                    Value::Float(1.5),
                    Value::Bool(true),
                    Value::Date(18_000),
                    Value::Null,
                ],
                vec![
                    Value::Int(2),
                    Value::str("Ωμέγα-测试"),
                    Value::Float(-0.0),
                    Value::Bool(false),
                    Value::Date(-3),
                    Value::str(""),
                ],
            ],
        ));
        db.add_table(table_of(
            "Likes",
            &[("like_id", DataType::Int), ("person_id", DataType::Int)],
            vec![vec![Value::Int(10), Value::Int(1)]],
        ));
        db.add_table(table_of("Empty", &[("k", DataType::Int)], vec![]));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Likes", "like_id").unwrap();
        db.add_foreign_key("Likes", "person_id", "Person", "person_id")
            .unwrap();
        db
    }

    fn dbs_identical(a: &Database, b: &Database) -> bool {
        let names_a = a.table_names();
        if names_a != b.table_names() {
            return false;
        }
        for name in names_a {
            let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
            if ta.schema() != tb.schema() || ta.num_rows() != tb.num_rows() {
                return false;
            }
            if (0..ta.num_rows() as u32).any(|r| ta.row(r) != tb.row(r)) {
                return false;
            }
            if a.primary_key(name) != b.primary_key(name) {
                return false;
            }
        }
        a.foreign_keys() == b.foreign_keys()
    }

    #[test]
    fn codec_round_trips_all_value_types_and_metadata() {
        let db = sample_db();
        let image = encode_checkpoint(42, &db);
        let (epoch, decoded) = decode_checkpoint(&image).unwrap();
        assert_eq!(epoch, 42);
        assert!(dbs_identical(&db, &decoded));
    }

    #[test]
    fn decoder_rejects_torn_and_corrupt_images() {
        let image = encode_checkpoint(7, &sample_db());
        // Zero-length and truncated-header images.
        assert!(decode_checkpoint(&[]).is_err());
        assert!(decode_checkpoint(&image[..MAGIC.len() + 3]).is_err());
        // Truncated payload.
        assert!(decode_checkpoint(&image[..image.len() - 1]).is_err());
        // Bad magic.
        let mut bad = image.clone();
        bad[0] ^= 0xff;
        assert!(decode_checkpoint(&bad).is_err());
        // One flipped payload byte must trip the CRC.
        let mut bad = image.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(decode_checkpoint(&bad).is_err());
        // A flipped CRC byte is equally fatal.
        let mut bad = image;
        bad[MAGIC.len()] ^= 0x01;
        assert!(decode_checkpoint(&bad).is_err());
    }

    #[test]
    fn store_writes_atomically_and_loads_newest() {
        let store = CheckpointStore::for_wal(temp_wal("store"));
        cleanup(&store);
        let db = sample_db();
        let w1 = store.write(3, &db, None).unwrap();
        assert!(w1.path.exists());
        store.write(9, &db, None).unwrap();
        // No temp file survives a completed write.
        assert!(!store.temp_path().exists());
        let loaded = store.load_newest().unwrap().unwrap();
        assert_eq!((loaded.epoch, loaded.rejected), (9, 0));
        assert!(dbs_identical(&db, &loaded.db));
        assert_eq!(
            store
                .list()
                .unwrap()
                .iter()
                .map(|(e, _)| *e)
                .collect::<Vec<_>>(),
            vec![3, 9]
        );
        cleanup(&store);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_checkpoint() {
        let store = CheckpointStore::for_wal(temp_wal("fallback"));
        cleanup(&store);
        let db = sample_db();
        store.write(3, &db, None).unwrap();
        let w2 = store.write(9, &db, None).unwrap();

        // Flip one byte of the newest file: load falls back to epoch 3.
        let mut bytes = std::fs::read(&w2.path).unwrap();
        bytes[MAGIC.len() + 1] ^= 0xff;
        std::fs::write(&w2.path, &bytes).unwrap();
        let loaded = store.load_newest().unwrap().unwrap();
        assert_eq!((loaded.epoch, loaded.rejected), (3, 1));
        assert!(dbs_identical(&db, &loaded.db));

        // Truncate the newest to a short header: still falls back.
        std::fs::write(&w2.path, &bytes[..5]).unwrap();
        let loaded = store.load_newest().unwrap().unwrap();
        assert_eq!((loaded.epoch, loaded.rejected), (3, 1));

        // Zero-length newest: still falls back.
        std::fs::write(&w2.path, b"").unwrap();
        let loaded = store.load_newest().unwrap().unwrap();
        assert_eq!((loaded.epoch, loaded.rejected), (3, 1));

        // Every checkpoint corrupt: no checkpoint, caller replays from base.
        for (_, path) in store.list().unwrap() {
            std::fs::write(path, b"junk").unwrap();
        }
        assert!(store.load_newest().unwrap().is_none());
        cleanup(&store);
    }

    #[test]
    fn stray_temp_file_is_ignored_by_load_and_list() {
        let store = CheckpointStore::for_wal(temp_wal("straytmp"));
        cleanup(&store);
        let db = sample_db();
        store.write(4, &db, None).unwrap();
        // A crash between temp write and rename leaves this behind.
        std::fs::write(store.temp_path(), b"torn checkpoint bytes").unwrap();
        assert_eq!(store.list().unwrap().len(), 1);
        let loaded = store.load_newest().unwrap().unwrap();
        assert_eq!((loaded.epoch, loaded.rejected), (4, 0));
        std::fs::remove_file(store.temp_path()).ok();
        cleanup(&store);
    }

    #[test]
    fn retention_keeps_newest_and_archives_or_deletes_the_rest() {
        let store = CheckpointStore::for_wal(temp_wal("retain"));
        cleanup(&store);
        let db = sample_db();
        for epoch in [1u64, 2, 3, 4] {
            store.write(epoch, &db, None).unwrap();
        }
        let report = store.retain(2, None).unwrap();
        assert_eq!((report.removed, report.archived), (2, 0));
        let epochs: Vec<u64> = store.list().unwrap().iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, vec![3, 4]);

        // Archival moves instead of deleting.
        store.write(5, &db, None).unwrap();
        let archive =
            std::env::temp_dir().join(format!("relgo_ckpt_archive_{}", std::process::id()));
        let report = store.retain(2, Some(&archive)).unwrap();
        assert_eq!((report.removed, report.archived), (0, 1));
        let archived = CheckpointStore {
            dir: archive.clone(),
            prefix: store.prefix.clone(),
        };
        let moved = archived.list().unwrap();
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, 3);
        std::fs::remove_dir_all(&archive).ok();
        cleanup(&store);
    }
}
