//! Exact homomorphism counting over a [`GraphView`].
//!
//! This is the measurement backend of GLogue: the number of homomorphic
//! matches of a (small) pattern in the data graph, honoring per-element
//! predicates and edge multiplicities. Root sampling with a stride
//! reproduces the paper's sparsification: seed candidates of the first
//! pattern vertex are sampled `1-in-s` and the count is scaled by `s`.
//!
//! Requires the graph index (adjacency is taken from the VE-index).
//!
//! [`count_homomorphisms_par`] partitions the *seed range* (the candidate
//! rows of the first traversal vertex) into morsels and enumerates them
//! from a scoped worker pool; per-morsel partial sums are reduced in morsel
//! order, so the parallel count equals the serial count whenever the
//! additions are exact (multiplicity sums are integer-valued, so they are).

use relgo_common::{morsel, RelGoError, Result, RowId};
use relgo_graph::{Direction, GraphIndex, GraphView};
use relgo_pattern::Pattern;

/// Count homomorphisms of `pattern` in `view`, exactly (`stride = 1`) or
/// root-sampled (`stride = s`: every s-th seed, result scaled by `s`).
pub fn count_homomorphisms(view: &GraphView, pattern: &Pattern, stride: usize) -> Result<f64> {
    count_homomorphisms_par(view, pattern, stride, 1)
}

/// [`count_homomorphisms`] with the seed range partitioned across up to
/// `threads` workers (1 = serial). Each worker owns a private binding
/// buffer; the data graph is only read.
pub fn count_homomorphisms_par(
    view: &GraphView,
    pattern: &Pattern,
    stride: usize,
    threads: usize,
) -> Result<f64> {
    let index = view
        .index()
        .ok_or_else(|| RelGoError::plan("homomorphism counting requires the graph index"))?;
    let stride = stride.max(1);
    let order = traversal_order(pattern);
    let root = order[0];
    let root_table = view.vertex_table(pattern.vertex(root).label);
    let n_rows = root_table.num_rows();
    // Seed k enumerates root row k·stride; morsels partition 0..n_seeds.
    let n_seeds = n_rows.div_ceil(stride);

    let order = &order;
    let partials = morsel::run_morsels(
        n_seeds,
        threads,
        morsel::DEFAULT_MORSEL_SEEDS,
        |_, range| {
            let mut sum = 0f64;
            let mut binding = vec![u32::MAX; pattern.vertex_count()];
            for k in range {
                let row = (k * stride) as RowId;
                if vertex_passes(view, pattern, root, row)? {
                    binding[root] = row;
                    sum += extend(view, index, pattern, order, 1, &mut binding)?;
                    binding[root] = u32::MAX;
                }
            }
            Ok(sum)
        },
    )?;
    // Reduce in morsel order: deterministic regardless of scheduling.
    let total: f64 = partials.into_iter().sum();
    Ok(total * stride as f64)
}

/// BFS-ish traversal order starting from a predicated vertex when one
/// exists (selective seeds shrink the search), otherwise vertex 0.
pub fn traversal_order(pattern: &Pattern) -> Vec<usize> {
    let n = pattern.vertex_count();
    let start = (0..n)
        .find(|&v| pattern.vertex(v).predicate.is_some())
        .unwrap_or(0);
    let mut order = vec![start];
    let mut seen = vec![false; n];
    seen[start] = true;
    while order.len() < n {
        // Next: an unvisited vertex adjacent to the visited set (always
        // exists; patterns are connected).
        let next = (0..n)
            .filter(|&v| !seen[v])
            .find(|&v| pattern.neighbors(v).iter().any(|&u| seen[u]))
            .expect("pattern is connected");
        seen[next] = true;
        order.push(next);
    }
    order
}

fn vertex_passes(view: &GraphView, pattern: &Pattern, v: usize, row: RowId) -> Result<bool> {
    match &pattern.vertex(v).predicate {
        None => Ok(true),
        Some(pred) => pred.matches(view.vertex_table(pattern.vertex(v).label), row),
    }
}

/// Multiplicity of data edges from the bound vertex `urow` to candidate
/// `wrow` through pattern edge `e` (honoring the edge predicate).
fn edge_multiplicity(
    view: &GraphView,
    index: &GraphIndex,
    pattern: &Pattern,
    e: usize,
    from_is_src: bool,
    urow: RowId,
    wrow: RowId,
) -> Result<f64> {
    let edge = pattern.edge(e);
    let dir = if from_is_src {
        Direction::Out
    } else {
        Direction::In
    };
    let (edges, nbrs) = index.neighbors(edge.label, dir, urow);
    // nbrs sorted: locate the wrow run.
    let lo = nbrs.partition_point(|&x| x < wrow);
    let hi = nbrs.partition_point(|&x| x <= wrow);
    if lo == hi {
        return Ok(0.0);
    }
    match &edge.predicate {
        None => Ok((hi - lo) as f64),
        Some(pred) => {
            let table = view.edge_table(edge.label);
            let mut m = 0f64;
            for &erow in &edges[lo..hi] {
                if pred.matches(table, erow)? {
                    m += 1.0;
                }
            }
            Ok(m)
        }
    }
}

fn extend(
    view: &GraphView,
    index: &GraphIndex,
    pattern: &Pattern,
    order: &[usize],
    depth: usize,
    binding: &mut Vec<u32>,
) -> Result<f64> {
    if depth == order.len() {
        return Ok(1.0);
    }
    let v = order[depth];
    // Constraint edges: incident edges of v whose other endpoint is bound.
    let constraints: Vec<(usize, usize, bool)> = pattern
        .incident_edges(v)
        .into_iter()
        .filter_map(|e| {
            let edge = pattern.edge(e);
            let (other, v_is_dst) = if edge.src == v {
                (edge.dst, false)
            } else {
                (edge.src, true)
            };
            (binding[other] != u32::MAX).then_some((e, other, v_is_dst))
        })
        .collect();
    debug_assert!(
        !constraints.is_empty(),
        "traversal order keeps connectivity"
    );

    // Candidates: the (sorted) neighbor list through the first constraint,
    // deduplicated; remaining constraints contribute multiplicities.
    let (e0, u0, v_is_dst0) = constraints[0];
    let dir0 = if v_is_dst0 {
        Direction::Out
    } else {
        Direction::In
    };
    let (_, nbrs) = index.neighbors(pattern.edge(e0).label, dir0, binding[u0]);

    let mut total = 0f64;
    let mut i = 0;
    while i < nbrs.len() {
        let w = nbrs[i];
        // Skip the duplicate run; multiplicity is recomputed uniformly.
        let mut j = i + 1;
        while j < nbrs.len() && nbrs[j] == w {
            j += 1;
        }
        i = j;
        if !vertex_passes(view, pattern, v, w)? {
            continue;
        }
        let mut mult = 1f64;
        for &(e, u, v_is_dst) in &constraints {
            // The bound endpoint `u` is the edge's source exactly when the
            // new vertex `v` is its destination.
            let m = edge_multiplicity(view, index, pattern, e, v_is_dst, binding[u], w)?;
            if m == 0.0 {
                mult = 0.0;
                break;
            }
            mult *= m;
        }
        if mult == 0.0 {
            continue;
        }
        binding[v] = w;
        total += mult * extend(view, index, pattern, order, depth + 1, binding)?;
        binding[v] = u32::MAX;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::{DataType, LabelId};
    use relgo_graph::RGMapping;
    use relgo_pattern::PatternBuilder;
    use relgo_storage::table::table_of;
    use relgo_storage::{Database, ScalarExpr};

    /// Fig-2 data: Person {Tom, Bob, David}, Message {m1, m2},
    /// Likes {t→m1, b→m1, b→m2, d→m2}, Knows {t↔b, b↔d}.
    fn fig2_view() -> GraphView {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
                ("date", DataType::Date),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into(), Value::Date(31)],
                vec![2.into(), 2.into(), 100.into(), Value::Date(28)],
                vec![3.into(), 2.into(), 200.into(), Value::Date(20)],
                vec![4.into(), 3.into(), 200.into(), Value::Date(21)],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        g
    }

    use relgo_common::Value;

    fn person() -> LabelId {
        LabelId(0)
    }
    fn message() -> LabelId {
        LabelId(1)
    }
    fn likes() -> LabelId {
        LabelId(0)
    }
    fn knows() -> LabelId {
        LabelId(1)
    }

    #[test]
    fn single_vertex_counts_rows() {
        let g = fig2_view();
        let mut b = PatternBuilder::new();
        b.vertex("p", person());
        let p = b.build().unwrap();
        assert_eq!(count_homomorphisms(&g, &p, 1).unwrap(), 3.0);
    }

    #[test]
    fn single_edge_counts_edges() {
        let g = fig2_view();
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p", person());
        let m = b.vertex("m", message());
        b.edge(p1, m, likes()).unwrap();
        let p = b.build().unwrap();
        assert_eq!(count_homomorphisms(&g, &p, 1).unwrap(), 4.0);
    }

    #[test]
    fn wedge_count() {
        // (p1)-[Likes]->(m)<-[Likes]-(p2): homomorphism, so p1 may equal p2.
        // m1 liked by {T,B}, m2 by {B,D} → 4 + 4 = 8 ordered pairs.
        let g = fig2_view();
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", person());
        let p2 = b.vertex("p2", person());
        let m = b.vertex("m", message());
        b.edge(p1, m, likes()).unwrap();
        b.edge(p2, m, likes()).unwrap();
        let p = b.build().unwrap();
        assert_eq!(count_homomorphisms(&g, &p, 1).unwrap(), 8.0);
    }

    #[test]
    fn fig2_triangle_count() {
        // (p1)-[Knows]->(p2), (p1)-[Likes]->(m), (p2)-[Likes]->(m).
        // Knows pairs: (T,B),(B,T),(B,D),(D,B). Common liked messages:
        // T∩B={m1}, B∩T={m1}, B∩D={m2}, D∩B={m2} → 4 matches (the graph
        // relation GR_P of the paper's Fig 2(b)).
        let g = fig2_view();
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", person());
        let p2 = b.vertex("p2", person());
        let m = b.vertex("m", message());
        b.edge(p1, p2, knows()).unwrap();
        b.edge(p1, m, likes()).unwrap();
        b.edge(p2, m, likes()).unwrap();
        let p = b.build().unwrap();
        assert_eq!(count_homomorphisms(&g, &p, 1).unwrap(), 4.0);
    }

    #[test]
    fn vertex_predicate_prunes() {
        let g = fig2_view();
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", person());
        let m = b.vertex("m", message());
        b.edge(p1, m, likes()).unwrap();
        b.vertex_predicate(p1, ScalarExpr::col_eq(1, "Bob"));
        let p = b.build().unwrap();
        assert_eq!(count_homomorphisms(&g, &p, 1).unwrap(), 2.0);
    }

    #[test]
    fn edge_predicate_prunes() {
        let g = fig2_view();
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", person());
        let m = b.vertex("m", message());
        let e = b.edge(p1, m, likes()).unwrap();
        b.edge_predicate(
            e,
            ScalarExpr::col_cmp(3, relgo_storage::BinaryOp::Ge, Value::Date(28)),
        );
        let p = b.build().unwrap();
        // Likes with date ≥ 28: l1 (31) and l2 (28).
        assert_eq!(count_homomorphisms(&g, &p, 1).unwrap(), 2.0);
    }

    #[test]
    fn order_starts_at_predicated_vertex() {
        let mut b = PatternBuilder::new();
        let a = b.vertex("a", person());
        let c = b.vertex("c", message());
        b.edge(a, c, likes()).unwrap();
        b.vertex_predicate(c, ScalarExpr::col_eq(0, 100));
        let p = b.build().unwrap();
        assert_eq!(traversal_order(&p)[0], 1);
    }

    #[test]
    fn parallel_count_equals_serial() {
        let g = fig2_view();
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", person());
        let p2 = b.vertex("p2", person());
        let m = b.vertex("m", message());
        b.edge(p1, p2, knows()).unwrap();
        b.edge(p1, m, likes()).unwrap();
        b.edge(p2, m, likes()).unwrap();
        let p = b.build().unwrap();
        let serial = count_homomorphisms(&g, &p, 1).unwrap();
        for threads in [2usize, 8] {
            assert_eq!(count_homomorphisms_par(&g, &p, 1, threads).unwrap(), serial);
        }
        // Sampled counting partitions the same seed set.
        let sampled = count_homomorphisms(&g, &p, 2).unwrap();
        assert_eq!(count_homomorphisms_par(&g, &p, 2, 8).unwrap(), sampled);
    }

    #[test]
    fn sampling_scales_back_up() {
        let g = fig2_view();
        let mut b = PatternBuilder::new();
        b.vertex("p", person());
        let p = b.build().unwrap();
        // stride 2 visits persons {0, 2} → 2 seeds × 2 = 4 ≈ 3.
        let sampled = count_homomorphisms(&g, &p, 2).unwrap();
        assert_eq!(sampled, 4.0);
    }

    #[test]
    fn counting_without_index_errors() {
        let mut db = Database::new();
        db.add_table(table_of(
            "V",
            &[("id", DataType::Int)],
            vec![vec![1.into()]],
        ));
        db.set_primary_key("V", "id").unwrap();
        let g = GraphView::build(&mut db, RGMapping::new().vertex("V")).unwrap();
        let mut b = PatternBuilder::new();
        b.vertex("v", LabelId(0));
        let p = b.build().unwrap();
        assert!(count_homomorphisms(&g, &p, 1).is_err());
    }
}
