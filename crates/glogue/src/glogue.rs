//! The GLogue statistics store.
//!
//! GLogS builds a structure whose vertices are patterns of up to `k`
//! vertices (k = 3 by default) annotated with their match cardinalities.
//! We realize the same statistics as a *memoized counting service*: exact
//! cardinalities of small (sub-)patterns — predicates included — computed on
//! first use against the (optionally sparsified) graph and cached under a
//! canonical key; larger patterns are estimated by peeling one vertex at a
//! time and multiplying by conditional extension rates derived from exact
//! small-pattern counts (the "high-order statistics" of §4.3).

use crate::counting::count_homomorphisms_par;
use parking_lot::Mutex;
use relgo_common::fxhash::FxHashMap;
use relgo_common::{RelGoError, Result};
use relgo_graph::{GraphStats, GraphView};
use relgo_pattern::decompose::{self, is_induced_connected, iter_vertices, sub_pattern, VertexSet};
use relgo_pattern::{canonical_code, Pattern};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache key: canonical skeleton code + canonicalized predicate summary.
type StatKey = (relgo_pattern::CanonCode, String);

fn stat_key(p: &Pattern) -> StatKey {
    let code = canonical_code(p);
    let mut preds: Vec<String> = Vec::new();
    for v in p.vertices() {
        if let Some(e) = &v.predicate {
            preds.push(format!("v{}:{}", v.label.0, e));
        }
    }
    for e in p.edges() {
        if let Some(x) = &e.predicate {
            preds.push(format!("e{}:{}", e.label.0, x));
        }
    }
    preds.sort();
    (code, preds.join("&"))
}

/// The set of vertex and edge labels a cached count depends on. A pattern's
/// homomorphism count only reads the tables backing its own labels, so a
/// committed delta invalidates exactly the entries whose mask intersects
/// the changed labels. Labels ≥ 64 share the top bit (conservative:
/// over-invalidation only, never a stale count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelMask {
    /// Vertex-label bits.
    pub vertices: u64,
    /// Edge-label bits.
    pub edges: u64,
}

impl LabelMask {
    fn bit(label: u16) -> u64 {
        1u64 << (label as u32).min(63)
    }

    /// The labels `pattern` touches.
    pub fn of_pattern(p: &Pattern) -> LabelMask {
        let mut m = LabelMask::default();
        for v in p.vertices() {
            m.vertices |= LabelMask::bit(v.label.0);
        }
        for e in p.edges() {
            m.edges |= LabelMask::bit(e.label.0);
        }
        m
    }

    /// The mask of every label whose flag is set.
    pub fn of_flags(changed_vertex: &[bool], changed_edge: &[bool]) -> LabelMask {
        let mut m = LabelMask::default();
        for (l, &c) in changed_vertex.iter().enumerate() {
            if c {
                m.vertices |= LabelMask::bit(l as u16);
            }
        }
        for (l, &c) in changed_edge.iter().enumerate() {
            if c {
                m.edges |= LabelMask::bit(l as u16);
            }
        }
        m
    }

    /// Whether the two masks share any label.
    pub fn intersects(&self, other: &LabelMask) -> bool {
        (self.vertices & other.vertices) | (self.edges & other.edges) != 0
    }
}

/// High-order statistics provider for the graph-aware optimizer.
pub struct GLogue {
    view: Arc<GraphView>,
    stats: GraphStats,
    /// Exact-counting threshold `k` (patterns up to `k` vertices are counted
    /// exactly; the paper uses k = 3).
    k: usize,
    /// Sparsification stride: 1 = exact counting, `s` = 1-in-s root
    /// sampling scaled back by `s`.
    stride: usize,
    /// Worker threads for seed-partitioned counting (1 = serial).
    /// Atomic so a shared (`Arc`ed) GLogue can be retuned without
    /// invalidating its cache — parallel counts equal serial counts.
    threads: AtomicUsize,
    /// Cached exact counts, each stamped with the labels it depends on so
    /// [`GLogue::refreshed`] can carry unaffected entries across an ingest
    /// commit.
    cache: Mutex<FxHashMap<StatKey, (f64, LabelMask)>>,
}

impl std::fmt::Debug for GLogue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GLogue")
            .field("k", &self.k)
            .field("stride", &self.stride)
            .field("threads", &self.threads.load(Ordering::Relaxed))
            .field("cached_patterns", &self.cache.lock().len())
            .finish()
    }
}

impl GLogue {
    /// Create a GLogue over `view` (must have its graph index built) with
    /// exact-counting threshold `k` and sparsification stride `stride`.
    pub fn new(view: Arc<GraphView>, k: usize, stride: usize) -> Result<GLogue> {
        GLogue::with_threads(view, k, stride, 1)
    }

    /// [`GLogue::new`] with `threads` workers for homomorphism counting:
    /// statistics (re)builds partition each pattern's seed range across the
    /// pool ([`crate::counting::count_homomorphisms_par`]).
    pub fn with_threads(
        view: Arc<GraphView>,
        k: usize,
        stride: usize,
        threads: usize,
    ) -> Result<GLogue> {
        if view.index().is_none() {
            return Err(RelGoError::plan(
                "GLogue requires the graph index (build_index first)",
            ));
        }
        let stats = view.stats();
        Ok(GLogue {
            view,
            stats,
            k: k.max(1),
            stride: stride.max(1),
            threads: AtomicUsize::new(threads.max(1)),
            cache: Mutex::new(FxHashMap::default()),
        })
    }

    /// Delta-aware refresh across an ingest commit: a new GLogue over the
    /// **merged** view that keeps `prev`'s tuning (`k`, `stride`, threads)
    /// and carries over every cached pattern count whose label mask misses
    /// the changed labels (flags as produced by
    /// `GraphView::changed_label_flags`). Exact on both sides: retained
    /// entries were counted on tables the delta did not touch (a fresh
    /// count would reproduce them bit-for-bit), and evicted entries are
    /// lazily recounted against the merged view — so a refreshed GLogue is
    /// observationally identical to a from-scratch rebuild, at a fraction
    /// of the recounting cost. Label-level statistics are refreshed through
    /// [`GraphStats::refresh_delta`].
    pub fn refreshed(
        prev: &GLogue,
        view: Arc<GraphView>,
        changed_vertex: &[bool],
        changed_edge: &[bool],
    ) -> Result<GLogue> {
        if view.index().is_none() {
            return Err(RelGoError::plan(
                "GLogue requires the graph index (build_index first)",
            ));
        }
        let stats =
            GraphStats::refresh_delta(prev.graph_stats(), &view, changed_vertex, changed_edge);
        let changed = LabelMask::of_flags(changed_vertex, changed_edge);
        let mut cache = prev.cache.lock().clone();
        cache.retain(|_, (_, mask)| !mask.intersects(&changed));
        Ok(GLogue {
            view,
            stats,
            k: prev.k,
            stride: prev.stride,
            threads: AtomicUsize::new(prev.threads()),
            cache: Mutex::new(cache),
        })
    }

    /// Exact-counting threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sparsification stride (1 = exact).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Current counting-worker thread count.
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed)
    }

    /// Retune the counting-worker thread count. Cached cardinalities stay
    /// valid: parallel counting is count-identical to serial.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads.max(1), Ordering::Relaxed);
    }

    /// The underlying graph view.
    pub fn view(&self) -> &Arc<GraphView> {
        &self.view
    }

    /// Label-level statistics (`d̄` feeds the EXPAND cost).
    pub fn graph_stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Number of cached pattern cardinalities (diagnostics).
    pub fn cached_patterns(&self) -> usize {
        self.cache.lock().len()
    }

    /// Exact (possibly sampled) cardinality of a small pattern, cached.
    fn exact(&self, p: &Pattern) -> Result<f64> {
        let key = stat_key(p);
        if let Some(&(c, _)) = self.cache.lock().get(&key) {
            return Ok(c);
        }
        let c = count_homomorphisms_par(&self.view, p, self.stride, self.threads())?;
        self.cache.lock().insert(key, (c, LabelMask::of_pattern(p)));
        Ok(c)
    }

    /// Estimated cardinality `|M(P)|` of an arbitrary pattern: exact when
    /// `|V_P| ≤ k`, otherwise peel-and-extend estimation.
    pub fn cardinality(&self, p: &Pattern) -> Result<f64> {
        if p.vertex_count() <= self.k {
            return self.exact(p);
        }
        // Peel a vertex whose removal keeps the pattern connected,
        // preferring low constraint degree (leaves first: their extension
        // rate is a plain conditional degree, the best-understood case).
        let n = p.vertex_count();
        let full = decompose::full_set(n);
        let peel = (0..n)
            .filter(|&v| is_induced_connected(p, decompose::remove(full, v)))
            .min_by_key(|&v| p.incident_edges(v).len())
            .ok_or_else(|| RelGoError::plan("pattern has no removable vertex"))?;
        let rest = decompose::remove(full, peel);
        let (sub, map) = sub_pattern(p, rest);
        let base = self.cardinality(&sub)?;
        let factor = self.extension_rate(p, rest, peel, &map)?;
        Ok(base * factor)
    }

    /// Conditional extension rate: the expected number of matches of vertex
    /// `v` per existing match of the sub-pattern over `sub` ⊆ V(P).
    ///
    /// Computed from exact counts of the *closure pattern* around `v` —
    /// `v`, its neighbors inside `sub`, the connecting edges, and any edges
    /// among those neighbors — divided by the count of the neighbors-only
    /// pattern. When the closure pattern exceeds `k` vertices, falls back to
    /// a product of pairwise (2-vertex) rates.
    pub fn extension_rate(
        &self,
        p: &Pattern,
        sub: VertexSet,
        v: usize,
        _sub_map: &[usize],
    ) -> Result<f64> {
        let nbrs: Vec<usize> = p
            .neighbors(v)
            .into_iter()
            .filter(|&u| decompose::contains(sub, u))
            .collect();
        if nbrs.is_empty() {
            return Err(RelGoError::plan("extension vertex is disconnected"));
        }
        let closure_size = nbrs.len() + 1;
        if closure_size <= self.k {
            let nbr_set = nbrs
                .iter()
                .fold(0 as VertexSet, |s, &u| decompose::insert(s, u));
            // The neighbors-only pattern must be connected to be countable;
            // if not (e.g. two far-apart anchors), fall back to pairwise.
            if is_induced_connected(p, nbr_set) {
                let closure_set = decompose::insert(nbr_set, v);
                let (closure, _) = sub_pattern(p, closure_set);
                let (anchors, _) = sub_pattern(p, nbr_set);
                let num = self.exact(&closure)?;
                let den = self.exact(&anchors)?.max(1e-9);
                return Ok(num / den);
            }
        }
        // Pairwise fallback: independence across the constraint edges.
        // rate = |V_v| × Π_e ( |edge pattern e| / (|V_u| × |V_v|) ),
        // with each |edge pattern| counted exactly (predicates included).
        let v_card = {
            let vset = decompose::insert(0, v);
            // A single-vertex pattern over v (with its predicate).
            let (single, _) = sub_pattern_with_vertex(p, vset, v);
            self.exact(&single)?
        };
        let mut rate = v_card;
        for &u in &nbrs {
            let pair_set = decompose::insert(decompose::insert(0, u), v);
            let (pair, _) = sub_pattern(p, pair_set);
            let pair_count = self.exact(&pair)?;
            let u_card = {
                let uset = decompose::insert(0, u);
                let (single, _) = sub_pattern_with_vertex(p, uset, u);
                self.exact(&single)?
            };
            rate *= pair_count / (u_card.max(1e-9) * v_card.max(1e-9));
        }
        Ok(rate)
    }

    /// Estimated cardinality of the sub-pattern induced by `set` (helper
    /// for subset-DP planners).
    pub fn subset_cardinality(&self, p: &Pattern, set: VertexSet) -> Result<f64> {
        let (sub, _) = sub_pattern(p, set);
        self.cardinality(&sub)
    }

    /// Average degree through `(edge label, direction)` — delegates to the
    /// label statistics.
    pub fn avg_degree(&self, label: relgo_common::LabelId, dir: relgo_graph::Direction) -> f64 {
        self.stats.avg_degree(label, dir)
    }
}

/// Extract a (possibly single-vertex) sub-pattern; wrapper so single-vertex
/// extractions read clearly at call sites.
fn sub_pattern_with_vertex(p: &Pattern, set: VertexSet, v: usize) -> (Pattern, Vec<usize>) {
    debug_assert!(decompose::contains(set, v));
    debug_assert_eq!(iter_vertices(set).count(), 1);
    sub_pattern(p, set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::{DataType, LabelId, Value};
    use relgo_graph::RGMapping;
    use relgo_pattern::PatternBuilder;
    use relgo_storage::table::table_of;
    use relgo_storage::{Database, ScalarExpr};

    fn fig2_view() -> Arc<GraphView> {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
                ("date", DataType::Date),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into(), Value::Date(31)],
                vec![2.into(), 2.into(), 100.into(), Value::Date(28)],
                vec![3.into(), 2.into(), 200.into(), Value::Date(20)],
                vec![4.into(), 3.into(), 200.into(), Value::Date(21)],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        Arc::new(g)
    }

    fn triangle() -> Pattern {
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let p2 = b.vertex("p2", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, p2, LabelId(1)).unwrap();
        b.edge(p1, m, LabelId(0)).unwrap();
        b.edge(p2, m, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn requires_index() {
        let mut db = Database::new();
        db.add_table(table_of(
            "V",
            &[("id", DataType::Int)],
            vec![vec![1.into()]],
        ));
        db.set_primary_key("V", "id").unwrap();
        let g = GraphView::build(&mut db, RGMapping::new().vertex("V")).unwrap();
        assert!(GLogue::new(Arc::new(g), 3, 1).is_err());
    }

    #[test]
    fn small_patterns_are_exact_and_cached() {
        let gl = GLogue::new(fig2_view(), 3, 1).unwrap();
        let t = triangle();
        assert_eq!(gl.cardinality(&t).unwrap(), 4.0);
        let before = gl.cached_patterns();
        assert_eq!(gl.cardinality(&t).unwrap(), 4.0);
        assert_eq!(gl.cached_patterns(), before, "second call hits the cache");
    }

    #[test]
    fn predicates_change_cardinality_not_key_collision() {
        let gl = GLogue::new(fig2_view(), 3, 1).unwrap();
        let t = triangle();
        let mut t_tom = t.clone();
        t_tom.add_vertex_predicate(0, ScalarExpr::col_eq(1, "Tom"));
        assert_eq!(gl.cardinality(&t).unwrap(), 4.0);
        // p1 = Tom: knows pairs from Tom: (T,B); common message m1 → 1.
        assert_eq!(gl.cardinality(&t_tom).unwrap(), 1.0);
    }

    #[test]
    fn large_pattern_estimation_is_positive_and_finite() {
        let gl = GLogue::new(fig2_view(), 3, 1).unwrap();
        // 4-vertex path person-knows-person-knows-person-likes-message.
        let mut b = PatternBuilder::new();
        let a = b.vertex("a", LabelId(0));
        let c = b.vertex("c", LabelId(0));
        let d = b.vertex("d", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(a, c, LabelId(1)).unwrap();
        b.edge(c, d, LabelId(1)).unwrap();
        b.edge(d, m, LabelId(0)).unwrap();
        let p = b.build().unwrap();
        let est = gl.cardinality(&p).unwrap();
        assert!(est.is_finite() && est > 0.0);
        // Exact count: knows-paths of length 2: (T,B,T),(T,B,D),(B,T,B),
        // (B,D,B),(D,B,T),(D,B,D); last vertex likes: T→1, D→1, B→2
        // → 1+1+2+2+1+1 = 8. Estimation must be in the right ballpark.
        assert!((1.0..64.0).contains(&est), "est = {est}");
    }

    #[test]
    fn estimation_with_k2_uses_pairwise_rates() {
        let gl = GLogue::new(fig2_view(), 2, 1).unwrap();
        let t = triangle();
        let est = gl.cardinality(&t).unwrap();
        // With only 2-vertex exact stats the triangle is estimated, not
        // counted; it must still be positive and finite.
        assert!(est.is_finite() && est > 0.0);
    }

    #[test]
    fn subset_cardinality_matches_direct() {
        let gl = GLogue::new(fig2_view(), 3, 1).unwrap();
        let t = triangle();
        // Subset {p1, p2} = single knows edge → 4 matches.
        let c = gl.subset_cardinality(&t, 0b011).unwrap();
        assert_eq!(c, 4.0);
    }

    #[test]
    fn refreshed_retains_unaffected_counts_and_evicts_touched() {
        let view = fig2_view();
        let gl = GLogue::new(Arc::clone(&view), 3, 1).unwrap();
        let t = triangle(); // touches Person, Message, Likes, Knows
        let mut b = PatternBuilder::new();
        b.vertex("m", LabelId(1));
        let msg_only = b.build().unwrap();
        assert_eq!(gl.cardinality(&t).unwrap(), 4.0);
        assert_eq!(gl.cardinality(&msg_only).unwrap(), 2.0);
        let cached = gl.cached_patterns();
        assert!(cached >= 2);

        // "Commit" a delta touching Person (and therefore Likes/Knows):
        // message-only counts survive, everything else is evicted.
        let changed_v = vec![true, false];
        let changed_e = vec![true, true];
        let refreshed = GLogue::refreshed(&gl, Arc::clone(&view), &changed_v, &changed_e).unwrap();
        assert_eq!(refreshed.k(), 3);
        assert_eq!(refreshed.stride(), 1);
        assert!(refreshed.cached_patterns() < cached);
        assert!(refreshed.cached_patterns() >= 1, "message count retained");
        // Counts stay exact after the refresh (same view here).
        assert_eq!(refreshed.cardinality(&msg_only).unwrap(), 2.0);
        assert_eq!(refreshed.cardinality(&t).unwrap(), 4.0);

        // A delta touching nothing the triangle uses retains it.
        let refreshed =
            GLogue::refreshed(&gl, Arc::clone(&view), &[false, false], &[false, false]).unwrap();
        assert_eq!(refreshed.cached_patterns(), cached);
    }

    #[test]
    fn label_mask_intersection() {
        let t = triangle();
        let m = LabelMask::of_pattern(&t);
        assert_eq!(m.vertices, 0b11);
        assert_eq!(m.edges, 0b11);
        let person_only = LabelMask::of_flags(&[true, false], &[false, false]);
        assert!(m.intersects(&person_only));
        let unrelated = LabelMask::of_flags(&[false, false], &[false, false]);
        assert!(!m.intersects(&unrelated));
    }

    #[test]
    fn sparsified_counts_are_scaled() {
        let gl = GLogue::new(fig2_view(), 3, 2).unwrap();
        let mut b = PatternBuilder::new();
        b.vertex("p", LabelId(0));
        let p = b.build().unwrap();
        // Sampled persons {row0, row2} → 2 × stride 2 = 4.
        assert_eq!(gl.cardinality(&p).unwrap(), 4.0);
    }
}
