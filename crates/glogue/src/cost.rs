//! The RelGo cost model (paper §4.2.1).
//!
//! With a graph index, the three physical implementations of b⋈ are costed
//! as:
//!
//! * **EXPAND** (single-edge right child): `|M(P'ₗ)| × d̄`;
//! * **EXPAND_INTERSECT** (complete-star right child): `|M(P'ₗ)|` × (the
//!   cheapest adjacency list scanned per tuple + the average intersection
//!   size, i.e. the result-per-tuple ratio);
//! * **HASH_JOIN** (arbitrary right child): `|M(P'ₗ)| × |M(P'ᵣ)|`.
//!
//! Without a graph index, every operation is a hash join and costs the
//! product of its input cardinalities.

/// Tunable cost model. The `with_index` flag mirrors the paper's two
/// regimes.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Whether graph-index-backed operators (EXPAND / EXPAND_INTERSECT /
    /// predefined joins) are available.
    pub with_index: bool,
}

impl CostModel {
    /// Cost model with the graph index available.
    pub fn indexed() -> CostModel {
        CostModel { with_index: true }
    }

    /// Cost model without any graph index.
    pub fn unindexed() -> CostModel {
        CostModel { with_index: false }
    }

    /// Cost of expanding one edge from every tuple of the left side.
    ///
    /// `card_left` = |M(P'ₗ)|, `avg_degree` = d̄ of the traversed
    /// (edge label, direction), `edge_rel_card` = |R_e| (used by the
    /// no-index hash-join fallback).
    pub fn expand(&self, card_left: f64, avg_degree: f64, edge_rel_card: f64) -> f64 {
        if self.with_index {
            card_left * avg_degree.max(1e-3)
        } else {
            // Hash join of the left side with the edge relation.
            card_left * edge_rel_card.max(1.0)
        }
    }

    /// Cost of a complete-star intersection producing `result_card` tuples.
    ///
    /// `degrees` are the d̄ of each leaf's adjacency; the operator scans the
    /// shortest list per tuple and merges, so the per-tuple work is the
    /// smallest degree plus the average intersection size
    /// (`result_card / card_left`).
    pub fn expand_intersect(&self, card_left: f64, degrees: &[f64], result_card: f64) -> f64 {
        debug_assert!(!degrees.is_empty());
        if self.with_index {
            let d_min = degrees.iter().copied().fold(f64::INFINITY, f64::min);
            card_left * d_min.max(1e-3) + result_card
        } else {
            // Chained hash joins over |Vs| single-edge patterns; dominated
            // by the first join's product. Callers model the chain
            // explicitly; this is the aggregate shortcut.
            let d_max = degrees.iter().copied().fold(1.0f64, f64::max);
            card_left * d_max * degrees.len() as f64 + result_card
        }
    }

    /// Cost of a hash join of two sub-pattern relations (paper: the product
    /// of the cardinalities being joined).
    pub fn hash_join(&self, card_left: f64, card_right: f64) -> f64 {
        card_left.max(1.0) * card_right.max(1.0)
    }

    /// Cost of scanning a vertex relation of `card` rows (plan entry point).
    pub fn scan(&self, card: f64) -> f64 {
        card.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_with_index_scales_by_degree() {
        let m = CostModel::indexed();
        assert_eq!(m.expand(100.0, 3.0, 1_000_000.0), 300.0);
    }

    #[test]
    fn expand_without_index_is_a_join() {
        let m = CostModel::unindexed();
        assert_eq!(m.expand(100.0, 3.0, 500.0), 50_000.0);
        // Index makes expansion dramatically cheaper when |R_e| ≫ d̄ — the
        // core GRainDB argument.
        assert!(m.expand(100.0, 3.0, 500.0) > CostModel::indexed().expand(100.0, 3.0, 500.0));
    }

    #[test]
    fn intersect_prefers_short_lists() {
        let m = CostModel::indexed();
        let cheap = m.expand_intersect(100.0, &[2.0, 50.0], 10.0);
        let pricey = m.expand_intersect(100.0, &[50.0, 50.0], 10.0);
        assert!(cheap < pricey);
    }

    #[test]
    fn intersect_beats_chained_joins_on_cycles() {
        // EI with index vs the same star without index.
        let with = CostModel::indexed().expand_intersect(1000.0, &[5.0, 5.0], 2000.0);
        let without = CostModel::unindexed().expand_intersect(1000.0, &[5.0, 5.0], 2000.0);
        assert!(with < without);
    }

    #[test]
    fn join_cost_is_product_and_guards_zero() {
        let m = CostModel::indexed();
        assert_eq!(m.hash_join(10.0, 20.0), 200.0);
        assert_eq!(m.hash_join(0.0, 20.0), 20.0, "empty side floors at 1");
    }

    #[test]
    fn scan_cost_floors_at_one() {
        assert_eq!(CostModel::indexed().scan(0.0), 1.0);
        assert_eq!(CostModel::indexed().scan(42.0), 42.0);
    }
}
