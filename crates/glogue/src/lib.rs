//! # relgo-glogue
//!
//! High-order statistics and the RelGo cost model, adapted from GLogS
//! (paper §4.2.1, §4.3).
//!
//! * [`counting`] — an exact homomorphism counter over the graph view
//!   (optionally root-sampled, reproducing GLogS's sparsification trick;
//!   `count_homomorphisms_par` partitions the seed range across a morsel
//!   worker pool);
//! * [`glogue::GLogue`] — the statistics store: exact cardinalities for
//!   sub-patterns of up to `k` vertices (keyed by canonical code, computed
//!   on demand and cached) plus extension-rate estimation for larger
//!   patterns and exact predicate selectivities;
//! * [`cost::CostModel`] — the physical cost formulas: `EXPAND` =
//!   `|M(P'ₗ)| × d̄`, `EXPAND_INTERSECT` = `|M(P'ₗ)| × (scan + avg
//!   intersection size)`, `HASH_JOIN` = `|M(P'ₗ)| × |M(P'ᵣ)|`.

pub mod cost;
pub mod counting;
pub mod glogue;

pub use cost::CostModel;
pub use counting::{count_homomorphisms, count_homomorphisms_par};
pub use glogue::{GLogue, LabelMask};
