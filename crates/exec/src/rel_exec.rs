//! Interpreter for relational physical plans ([`RelOp`] trees).
//!
//! `SCAN_GRAPH_TABLE` is the bridge: it runs the embedded graph plan, applies
//! the pattern's matching semantics (the *all-distinct* operator of §2.2
//! when isomorphism-like semantics are requested), and flattens bindings
//! through the `COLUMNS` clause into a columnar [`Table`] — the π̂ operator.

use crate::chunk::GraphChunk;
use crate::graph_exec::{execute_graph, BatchState, GraphExecContext};
use crate::profile::{PlanProfile, ProfileMode, ProfileSink};
use relgo_common::morsel::TimeBudget;
use relgo_common::{DataType, ElementId, Field, FxHashMap, Result, Schema};
use relgo_core::rel_plan::{PhysicalPlan, RelOp};
use relgo_core::spjm::{AttrRef, GraphColumn, PatternElemRef};
use relgo_graph::GraphView;
use relgo_pattern::{MatchSemantics, Pattern};
use relgo_storage::ops;
use relgo_storage::{Column, Database, Table};
use std::sync::Arc;
use std::time::Instant;

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Whether graph-index-backed operators may be used.
    pub use_index: bool,
    /// Intermediate-size budget (rows) before `ResourceExhausted`.
    pub row_limit: usize,
    /// Intra-query worker threads for morsel-parallel graph operators
    /// (1 = serial; parallel output is bit-identical to serial).
    pub threads: usize,
    /// Optional wall-clock budget checked at morsel boundaries; expiry
    /// aborts with `DeadlineExceeded` (the time analogue of `row_limit`).
    pub deadline: Option<TimeBudget>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            use_index: true,
            row_limit: 50_000_000,
            threads: 1,
            deadline: None,
        }
    }
}

/// Execute a complete physical plan into a result table.
pub fn execute_plan(
    plan: &PhysicalPlan,
    view: &GraphView,
    db: &Database,
    cfg: &ExecConfig,
) -> Result<Table> {
    Ok(execute_plan_with(plan, view, db, cfg, ProfileMode::Off)?.0)
}

/// Execute a plan, optionally collecting one [`crate::profile::OperatorProfile`]
/// per physical operator (pre-order op ids, shared with
/// `PhysicalPlan::operator_metas` and the EXPLAIN rendering). Profiled
/// results are bit-identical to unprofiled ones — the sink is touched only
/// by the plan-driving thread, outside the morsel workers.
pub fn execute_plan_with(
    plan: &PhysicalPlan,
    view: &GraphView,
    db: &Database,
    cfg: &ExecConfig,
    mode: ProfileMode,
) -> Result<(Table, Option<PlanProfile>)> {
    let sink = match mode {
        ProfileMode::Off => None,
        ProfileMode::On => Some(ProfileSink::new()),
    };
    let out = exec_rel(
        &plan.root,
        &plan.pattern,
        view,
        db,
        cfg,
        None,
        sink.as_ref(),
    )?;
    let table = Arc::try_unwrap(out).unwrap_or_else(|arc| (*arc).clone());
    Ok((table, sink.map(|s| s.take())))
}

/// Execute N rebound instances of one plan skeleton as a batch. Results are
/// bit-identical to executing each plan through [`execute_plan`]; the
/// instances run in order but share one [`BatchState`], amortizing
/// literal-independent per-query setup (hash-fallback adjacency builds,
/// structural predicate masks) across the batch. The first error aborts the
/// batch.
pub fn execute_plan_batch<P: std::borrow::Borrow<PhysicalPlan>>(
    plans: &[P],
    view: &GraphView,
    db: &Database,
    cfg: &ExecConfig,
) -> Result<Vec<Table>> {
    let batch = BatchState::new();
    plans
        .iter()
        .map(|plan| {
            let plan = plan.borrow();
            let out = exec_rel(&plan.root, &plan.pattern, view, db, cfg, Some(&batch), None)?;
            Ok(Arc::try_unwrap(out).unwrap_or_else(|arc| (*arc).clone()))
        })
        .collect()
}

fn exec_rel(
    op: &RelOp,
    pattern: &Pattern,
    view: &GraphView,
    db: &Database,
    cfg: &ExecConfig,
    batch: Option<&BatchState>,
    sink: Option<&ProfileSink>,
) -> Result<Arc<Table>> {
    // Operator-boundary deadline check for the relational tree; the graph
    // operators below re-check at every morsel boundary.
    if let Some(deadline) = &cfg.deadline {
        deadline.check()?;
    }
    // Reserve the pre-order profile slot before recursing, so run-time op
    // ids line up with plan-time metas and EXPLAIN lines. Each arm records
    // its input rows and an own-work start taken after inputs return — a
    // parent's elapsed excludes its children's execution.
    let op_id = sink.map(|s| s.begin(op.kind()));
    let (rows_in, t0, out) = match op {
        RelOp::ScanGraphTable { graph, columns } => {
            let ctx = GraphExecContext {
                view,
                pattern,
                use_index: cfg.use_index,
                row_limit: cfg.row_limit,
                threads: cfg.threads,
                deadline: cfg.deadline,
                batch,
                profile: sink,
            };
            let chunk = execute_graph(graph, &ctx)?;
            let t0 = op_id.map(|_| Instant::now());
            let rows_in = chunk.len();
            let chunk = apply_semantics(&chunk, pattern, view)?;
            let out = Arc::new(project_graph_table(&chunk, pattern, view, columns)?);
            (rows_in, t0, out)
        }
        RelOp::ScanTable { table, predicate } => {
            let t0 = op_id.map(|_| Instant::now());
            let t = db.table(table)?;
            let out = match predicate {
                None => Arc::clone(t),
                Some(p) => Arc::new(ops::filter(t, p)?),
            };
            (0, t0, out)
        }
        RelOp::HashJoin { left, right, keys } => {
            let l = exec_rel(left, pattern, view, db, cfg, batch, sink)?;
            let r = exec_rel(right, pattern, view, db, cfg, batch, sink)?;
            let t0 = op_id.map(|_| Instant::now());
            let rows_in = l.num_rows() + r.num_rows();
            (rows_in, t0, Arc::new(ops::hash_join(&l, &r, keys)?))
        }
        RelOp::Filter { input, predicate } => {
            let t = exec_rel(input, pattern, view, db, cfg, batch, sink)?;
            let t0 = op_id.map(|_| Instant::now());
            (t.num_rows(), t0, Arc::new(ops::filter(&t, predicate)?))
        }
        RelOp::Project { input, cols } => {
            let t = exec_rel(input, pattern, view, db, cfg, batch, sink)?;
            let t0 = op_id.map(|_| Instant::now());
            (t.num_rows(), t0, Arc::new(ops::project(&t, cols)?))
        }
        RelOp::Aggregate { input, aggs } => {
            let t = exec_rel(input, pattern, view, db, cfg, batch, sink)?;
            let t0 = op_id.map(|_| Instant::now());
            let spec: Vec<(ops::AggFunc, usize)> =
                aggs.iter().map(|a| (a.func, a.column)).collect();
            (t.num_rows(), t0, Arc::new(ops::aggregate(&t, &spec)?))
        }
        RelOp::Distinct { input } => {
            let t = exec_rel(input, pattern, view, db, cfg, batch, sink)?;
            let t0 = op_id.map(|_| Instant::now());
            (t.num_rows(), t0, Arc::new(ops::distinct(&t)))
        }
        RelOp::Sort { input, keys } => {
            let t = exec_rel(input, pattern, view, db, cfg, batch, sink)?;
            let t0 = op_id.map(|_| Instant::now());
            (t.num_rows(), t0, Arc::new(ops::sort(&t, keys)?))
        }
        RelOp::Limit { input, n } => {
            let t = exec_rel(input, pattern, view, db, cfg, batch, sink)?;
            let t0 = op_id.map(|_| Instant::now());
            (t.num_rows(), t0, Arc::new(ops::limit(&t, *n)))
        }
    };
    if let (Some(sink), Some(id)) = (sink, op_id) {
        let elapsed = t0.map(|t| t.elapsed()).unwrap_or_default();
        sink.finish(id, rows_in as u64, out.num_rows() as u64, 0, elapsed, 0);
    }
    Ok(out)
}

/// Apply the all-distinct operator when the pattern requests isomorphism-
/// like semantics (§2.2 / §3.1).
pub fn apply_semantics(
    chunk: &GraphChunk,
    pattern: &Pattern,
    _view: &GraphView,
) -> Result<GraphChunk> {
    match pattern.semantics() {
        MatchSemantics::Homomorphism => Ok(chunk.clone()),
        MatchSemantics::DistinctVertices => {
            // Only same-label vertices can collide.
            let groups = same_label_groups(pattern);
            if groups.is_empty() {
                return Ok(chunk.clone());
            }
            let mut keep = Vec::new();
            'row: for row in 0..chunk.len() {
                for group in &groups {
                    for (i, &a) in group.iter().enumerate() {
                        for &b in &group[i + 1..] {
                            if chunk.vertex_at(a, row)? == chunk.vertex_at(b, row)? {
                                continue 'row;
                            }
                        }
                    }
                }
                keep.push(row);
            }
            Ok(chunk.take(&keep))
        }
        MatchSemantics::DistinctEdges => {
            let mut groups: FxHashMap<u16, Vec<usize>> = FxHashMap::default();
            for (e, pe) in pattern.edges().iter().enumerate() {
                groups.entry(pe.label.0).or_default().push(e);
            }
            let groups: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() > 1).collect();
            if groups.is_empty() {
                return Ok(chunk.clone());
            }
            let mut keep = Vec::new();
            'row: for row in 0..chunk.len() {
                for group in &groups {
                    for (i, &a) in group.iter().enumerate() {
                        for &b in &group[i + 1..] {
                            if chunk.edge_at(a, row)? == chunk.edge_at(b, row)? {
                                continue 'row;
                            }
                        }
                    }
                }
                keep.push(row);
            }
            Ok(chunk.take(&keep))
        }
    }
}

/// Groups of same-label pattern vertices with ≥ 2 members.
fn same_label_groups(pattern: &Pattern) -> Vec<Vec<usize>> {
    let mut groups: FxHashMap<u16, Vec<usize>> = FxHashMap::default();
    for (v, pv) in pattern.vertices().iter().enumerate() {
        groups.entry(pv.label.0).or_default().push(v);
    }
    groups.into_values().filter(|g| g.len() > 1).collect()
}

/// π̂ — flatten bindings into a relational table through the COLUMNS clause.
pub fn project_graph_table(
    chunk: &GraphChunk,
    pattern: &Pattern,
    view: &GraphView,
    columns: &[GraphColumn],
) -> Result<Table> {
    let mut fields = Vec::with_capacity(columns.len());
    let mut cols = Vec::with_capacity(columns.len());
    for gc in columns {
        match (gc.element, gc.attr) {
            (PatternElemRef::Vertex(v), AttrRef::Id) => {
                let label = pattern.vertex(v).label;
                let rids = chunk.vertex_col(v)?;
                let mut data = Vec::with_capacity(rids.len());
                for &r in rids {
                    data.push(ElementId::vertex(label, r).0 as i64);
                }
                fields.push(Field::new(gc.alias.clone(), DataType::Int));
                cols.push(Column::Int(data, None));
            }
            (PatternElemRef::Edge(e), AttrRef::Id) => {
                let label = pattern.edge(e).label;
                let rids = chunk.edge_col(e)?;
                let mut data = Vec::with_capacity(rids.len());
                for &r in rids {
                    data.push(ElementId::edge(label, r).0 as i64);
                }
                fields.push(Field::new(gc.alias.clone(), DataType::Int));
                cols.push(Column::Int(data, None));
            }
            (PatternElemRef::Vertex(v), AttrRef::Column(c)) => {
                let table = view.vertex_table(pattern.vertex(v).label);
                let rids = chunk.vertex_col(v)?;
                fields.push(Field::new(gc.alias.clone(), table.schema().field(c).dtype));
                cols.push(table.column(c).take(rids));
            }
            (PatternElemRef::Edge(e), AttrRef::Column(c)) => {
                let table = view.edge_table(pattern.edge(e).label);
                let rids = chunk.edge_col(e)?;
                fields.push(Field::new(gc.alias.clone(), table.schema().field(c).dtype));
                cols.push(table.column(c).take(rids));
            }
        }
    }
    Table::from_columns("graph_table", Schema::new(fields)?, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::{LabelId, Value};
    use relgo_core::graph_plan::{GraphOp, PlanAnnotation};
    use relgo_graph::{Direction, RGMapping};
    use relgo_pattern::PatternBuilder;
    use relgo_storage::table::table_of;

    fn fig2_setup() -> (GraphView, Database) {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into()],
                vec![2.into(), 2.into(), 100.into()],
                vec![3.into(), 2.into(), 200.into()],
                vec![4.into(), 3.into(), 200.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        (g, db)
    }

    fn like_pattern() -> Pattern {
        let mut b = PatternBuilder::new();
        let p = b.vertex("p", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p, m, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    fn like_plan() -> GraphOp {
        GraphOp::Expand {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: PlanAnnotation::default(),
            }),
            from: 0,
            edge: 0,
            to: 1,
            dir: Direction::Out,
            emit_edge: true,
            edge_predicate: None,
            vertex_predicate: None,
            ann: PlanAnnotation::default(),
        }
    }

    #[test]
    fn scan_graph_table_projects_attributes_and_ids() {
        let (view, db) = fig2_setup();
        let pattern = like_pattern();
        let plan = PhysicalPlan {
            pattern: pattern.clone(),
            root: RelOp::ScanGraphTable {
                graph: like_plan(),
                columns: vec![
                    GraphColumn {
                        element: PatternElemRef::Vertex(0),
                        attr: AttrRef::Column(1),
                        alias: "p_name".into(),
                    },
                    GraphColumn {
                        element: PatternElemRef::Vertex(1),
                        attr: AttrRef::Id,
                        alias: "m_id".into(),
                    },
                    GraphColumn {
                        element: PatternElemRef::Edge(0),
                        attr: AttrRef::Id,
                        alias: "e_id".into(),
                    },
                ],
            },
        };
        let out = execute_plan(&plan, &view, &db, &ExecConfig::default()).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.schema().field(0).name, "p_name");
        let names: Vec<Value> = (0..4).map(|r| out.value(r, 0)).collect();
        assert!(names.contains(&Value::str("Tom")));
        // Ids are vertex-encoded ints (label 1 = Message).
        let id = out.value(0, 1).as_int().unwrap() as u64;
        assert!(!ElementId(id).is_edge());
        assert_eq!(ElementId(id).label(), LabelId(1));
        let eid = out.value(0, 2).as_int().unwrap() as u64;
        assert!(ElementId(eid).is_edge());
    }

    #[test]
    fn full_pipeline_with_filter_and_join() {
        let (view, db) = fig2_setup();
        let pattern = like_pattern();
        // σ(p_name = 'Bob') over the graph table, then join Person table on
        // message-id? Keep it simple: filter + project.
        let plan = PhysicalPlan {
            pattern: pattern.clone(),
            root: RelOp::Project {
                input: Box::new(RelOp::Filter {
                    input: Box::new(RelOp::ScanGraphTable {
                        graph: like_plan(),
                        columns: vec![
                            GraphColumn {
                                element: PatternElemRef::Vertex(0),
                                attr: AttrRef::Column(1),
                                alias: "p_name".into(),
                            },
                            GraphColumn {
                                element: PatternElemRef::Vertex(1),
                                attr: AttrRef::Column(0),
                                alias: "m_key".into(),
                            },
                        ],
                    }),
                    predicate: relgo_storage::ScalarExpr::col_eq(0, "Bob"),
                }),
                cols: vec![1],
            },
        };
        let out = execute_plan(&plan, &view, &db, &ExecConfig::default()).unwrap();
        assert_eq!(out.num_rows(), 2);
        let mut keys: Vec<i64> = (0..2).map(|r| out.value(r, 0).as_int().unwrap()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![100, 200]);
    }

    #[test]
    fn distinct_vertices_semantics_filters_same_label_collisions() {
        let (view, _) = fig2_setup();
        // Wedge (p1)-likes->(m)<-likes-(p2), homomorphic count 8; with
        // distinct-vertex semantics p1 ≠ p2 removes the 4 diagonal rows.
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let p2 = b.vertex("p2", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, m, LabelId(0)).unwrap();
        b.edge(p2, m, LabelId(0)).unwrap();
        let pattern = b
            .build()
            .unwrap()
            .with_semantics(MatchSemantics::DistinctVertices);
        let plan = GraphOp::Expand {
            input: Box::new(GraphOp::Expand {
                input: Box::new(GraphOp::ScanVertex {
                    v: 0,
                    predicate: None,
                    ann: PlanAnnotation::default(),
                }),
                from: 0,
                edge: 0,
                to: 2,
                dir: Direction::Out,
                emit_edge: false,
                edge_predicate: None,
                vertex_predicate: None,
                ann: PlanAnnotation::default(),
            }),
            from: 2,
            edge: 1,
            to: 1,
            dir: Direction::In,
            emit_edge: false,
            edge_predicate: None,
            vertex_predicate: None,
            ann: PlanAnnotation::default(),
        };
        let ctx = GraphExecContext {
            view: &view,
            pattern: &pattern,
            use_index: true,
            row_limit: 1_000_000,
            threads: 1,
            deadline: None,
            batch: None,
            profile: None,
        };
        let chunk = execute_graph(&plan, &ctx).unwrap();
        assert_eq!(chunk.len(), 8);
        let filtered = apply_semantics(&chunk, &pattern, &view).unwrap();
        assert_eq!(filtered.len(), 4);
    }
}
