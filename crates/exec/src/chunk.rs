//! The runtime representation of a graph relation.
//!
//! A [`GraphChunk`] holds the matched bindings of a sub-pattern as
//! struct-of-arrays: one `Vec<RowId>` per bound pattern element. Vertices
//! and edges are identified by the row id in their backing relation (the
//! paper's relation-prefixed element ids — the label is implicit in the
//! pattern element).

use relgo_common::{RelGoError, Result, RowId};

/// A columnar batch of pattern-element bindings.
#[derive(Debug, Clone)]
pub struct GraphChunk {
    /// `vcols[v]` = column index binding pattern vertex `v`.
    vcols: Vec<Option<usize>>,
    /// `ecols[e]` = column index binding pattern edge `e`.
    ecols: Vec<Option<usize>>,
    cols: Vec<Vec<RowId>>,
    len: usize,
}

impl GraphChunk {
    /// An empty chunk for a pattern with `nv` vertices and `ne` edges —
    /// nothing bound, zero rows.
    pub fn new(nv: usize, ne: usize) -> Self {
        GraphChunk {
            vcols: vec![None; nv],
            ecols: vec![None; ne],
            cols: Vec::new(),
            len: 0,
        }
    }

    /// A chunk binding a single vertex to `rows`.
    pub fn from_vertex(nv: usize, ne: usize, v: usize, rows: Vec<RowId>) -> Self {
        let mut c = GraphChunk::new(nv, ne);
        c.len = rows.len();
        c.vcols[v] = Some(0);
        c.cols.push(rows);
        c
    }

    /// Number of rows (matches).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether vertex `v` is bound.
    pub fn binds_vertex(&self, v: usize) -> bool {
        self.vcols[v].is_some()
    }

    /// Whether edge `e` is bound.
    pub fn binds_edge(&self, e: usize) -> bool {
        self.ecols[e].is_some()
    }

    /// Bound vertex indices.
    pub fn bound_vertices(&self) -> Vec<usize> {
        (0..self.vcols.len())
            .filter(|&v| self.vcols[v].is_some())
            .collect()
    }

    /// Bound edge indices.
    pub fn bound_edges(&self) -> Vec<usize> {
        (0..self.ecols.len())
            .filter(|&e| self.ecols[e].is_some())
            .collect()
    }

    /// The binding column of vertex `v`.
    pub fn vertex_col(&self, v: usize) -> Result<&[RowId]> {
        let c = self.vcols[v]
            .ok_or_else(|| RelGoError::execution(format!("pattern vertex {v} is not bound")))?;
        Ok(&self.cols[c])
    }

    /// The binding column of edge `e`.
    pub fn edge_col(&self, e: usize) -> Result<&[RowId]> {
        let c = self.ecols[e]
            .ok_or_else(|| RelGoError::execution(format!("pattern edge {e} is not bound")))?;
        Ok(&self.cols[c])
    }

    /// The binding of vertex `v` in row `row`.
    pub fn vertex_at(&self, v: usize, row: usize) -> Result<RowId> {
        Ok(self.vertex_col(v)?[row])
    }

    /// The binding of edge `e` in row `row`.
    pub fn edge_at(&self, e: usize, row: usize) -> Result<RowId> {
        Ok(self.edge_col(e)?[row])
    }

    /// Gather rows at `indices` into a new chunk (same bindings).
    pub fn take(&self, indices: &[usize]) -> GraphChunk {
        GraphChunk {
            vcols: self.vcols.clone(),
            ecols: self.ecols.clone(),
            cols: self
                .cols
                .iter()
                .map(|c| indices.iter().map(|&i| c[i]).collect())
                .collect(),
            len: indices.len(),
        }
    }

    /// Extend this chunk by gathering input rows and appending new binding
    /// columns: the workhorse of `EXPAND`-style operators.
    ///
    /// `gather[i]` is the input row replicated into output row `i`; each
    /// `(element-kind, element, column)` in `new_cols` binds a new element.
    pub fn extend(
        &self,
        gather: &[usize],
        new_vertex: Option<(usize, Vec<RowId>)>,
        new_edges: Vec<(usize, Vec<RowId>)>,
    ) -> Result<GraphChunk> {
        let mut out = GraphChunk {
            vcols: self.vcols.clone(),
            ecols: self.ecols.clone(),
            cols: self
                .cols
                .iter()
                .map(|c| gather.iter().map(|&i| c[i]).collect())
                .collect(),
            len: gather.len(),
        };
        if let Some((v, col)) = new_vertex {
            if out.vcols[v].is_some() {
                return Err(RelGoError::execution(format!(
                    "vertex {v} is already bound"
                )));
            }
            if col.len() != out.len {
                return Err(RelGoError::execution("new vertex column length mismatch"));
            }
            out.vcols[v] = Some(out.cols.len());
            out.cols.push(col);
        }
        for (e, col) in new_edges {
            if out.ecols[e].is_some() {
                return Err(RelGoError::execution(format!("edge {e} is already bound")));
            }
            if col.len() != out.len {
                return Err(RelGoError::execution("new edge column length mismatch"));
            }
            out.ecols[e] = Some(out.cols.len());
            out.cols.push(col);
        }
        Ok(out)
    }

    /// Concatenate the bindings of `left` row `li` and `right` row `ri`
    /// into a joined chunk built by repeated [`GraphChunk::push_joined`];
    /// prepare the output layout first.
    pub fn join_layout(left: &GraphChunk, right: &GraphChunk) -> GraphChunk {
        let nv = left.vcols.len();
        let ne = left.ecols.len();
        let mut out = GraphChunk::new(nv, ne);
        let mut next = 0usize;
        for v in 0..nv {
            if left.vcols[v].is_some() || right.vcols[v].is_some() {
                out.vcols[v] = Some(next);
                next += 1;
            }
        }
        for e in 0..ne {
            if left.ecols[e].is_some() || right.ecols[e].is_some() {
                out.ecols[e] = Some(next);
                next += 1;
            }
        }
        out.cols = vec![Vec::new(); next];
        out
    }

    /// Append one joined row (see [`GraphChunk::join_layout`]); bindings
    /// present on both sides are taken from `left`.
    pub fn push_joined(
        &mut self,
        left: &GraphChunk,
        li: usize,
        right: &GraphChunk,
        ri: usize,
    ) -> Result<()> {
        for v in 0..self.vcols.len() {
            if let Some(c) = self.vcols[v] {
                let val = if left.vcols[v].is_some() {
                    left.vertex_at(v, li)?
                } else {
                    right.vertex_at(v, ri)?
                };
                self.cols[c].push(val);
            }
        }
        for e in 0..self.ecols.len() {
            if let Some(c) = self.ecols[e] {
                let val = if left.ecols[e].is_some() {
                    left.edge_at(e, li)?
                } else {
                    right.edge_at(e, ri)?
                };
                self.cols[c].push(val);
            }
        }
        self.len += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vertex_binds_one_column() {
        let c = GraphChunk::from_vertex(3, 2, 1, vec![10, 20]);
        assert_eq!(c.len(), 2);
        assert!(c.binds_vertex(1));
        assert!(!c.binds_vertex(0));
        assert_eq!(c.vertex_col(1).unwrap(), &[10, 20]);
        assert!(c.vertex_col(0).is_err());
        assert_eq!(c.bound_vertices(), vec![1]);
    }

    #[test]
    fn extend_gathers_and_appends() {
        let c = GraphChunk::from_vertex(2, 1, 0, vec![5, 6]);
        // Expand row 0 twice, row 1 once.
        let out = c
            .extend(
                &[0, 0, 1],
                Some((1, vec![100, 101, 102])),
                vec![(0, vec![7, 8, 9])],
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.vertex_col(0).unwrap(), &[5, 5, 6]);
        assert_eq!(out.vertex_col(1).unwrap(), &[100, 101, 102]);
        assert_eq!(out.edge_col(0).unwrap(), &[7, 8, 9]);
    }

    #[test]
    fn extend_rejects_double_binding() {
        let c = GraphChunk::from_vertex(2, 0, 0, vec![1]);
        assert!(c.extend(&[0], Some((0, vec![2])), vec![]).is_err());
    }

    #[test]
    fn take_subsets_rows() {
        let c = GraphChunk::from_vertex(1, 0, 0, vec![1, 2, 3, 4]);
        let t = c.take(&[3, 1]);
        assert_eq!(t.vertex_col(0).unwrap(), &[4, 2]);
    }

    #[test]
    fn join_layout_and_push() {
        let left = GraphChunk::from_vertex(3, 1, 0, vec![1, 2]);
        let left = left
            .extend(&[0, 1], Some((1, vec![10, 20])), vec![(0, vec![100, 200])])
            .unwrap();
        let right = GraphChunk::from_vertex(3, 1, 1, vec![10, 30]);
        let right = right
            .extend(&[0, 1], Some((2, vec![7, 8])), vec![])
            .unwrap();
        let mut out = GraphChunk::join_layout(&left, &right);
        // Join left row 0 (v1 = 10) with right row 0 (v1 = 10).
        out.push_joined(&left, 0, &right, 0).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.vertex_at(0, 0).unwrap(), 1);
        assert_eq!(out.vertex_at(1, 0).unwrap(), 10);
        assert_eq!(out.vertex_at(2, 0).unwrap(), 7);
        assert_eq!(out.edge_at(0, 0).unwrap(), 100);
    }
}
