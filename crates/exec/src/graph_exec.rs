//! Interpreter for physical graph plans ([`GraphOp`] trees).
//!
//! Two execution regimes, selected by [`GraphExecContext::use_index`]:
//!
//! * **indexed** — `EXPAND`/`EXPAND_INTERSECT` traverse the VE-index;
//!   `SCAN_EDGE` reads endpoints from the EV-index (GRainDB's predefined
//!   join);
//! * **unindexed** — `EXPAND` builds a transient hash multimap over the
//!   edge relation (a hash join, which is what DuckDB-like and RelGoHash
//!   executions pay); endpoint resolution goes through the λ key indexes.
//!
//! Bag semantics are preserved exactly: expansions iterate *adjacency
//! entries* (one output row per data edge), so trimming the edge column
//! never changes multiplicities.
//!
//! ## Intra-operator parallelism
//!
//! `EXPAND`, `EXPAND_INTERSECT` and `FILTER_VERTEX` are morsel-driven when
//! [`GraphExecContext::threads`] > 1: input rows are partitioned into
//! morsels ([`relgo_common::morsel`]), each worker produces local output
//! columns, and per-morsel outputs are concatenated **in morsel order** —
//! parallel results are bit-identical to serial execution. The row-limit
//! guard is a shared [`RowBudget`] charged with each row's projected output
//! size *before* the rows are materialized.
//!
//! ## Allocation-free expansion
//!
//! The per-row hot path borrows adjacency lists as slices (no `(Vec, Vec)`
//! clone per input row — the hashed fallback stores its multimap in flat
//! CSR-like arrays), and per-element predicates are precomputed into
//! per-table-row boolean masks whenever the expansion touches enough
//! entries to amortize one evaluation per table row.

use crate::chunk::GraphChunk;
use crate::profile::ProfileSink;
use relgo_common::morsel::{self, RowBudget, TimeBudget};
use relgo_common::{FxHashMap, LabelId, RelGoError, Result, RowId};
use relgo_core::graph_plan::{GraphOp, StarLeg};
use relgo_graph::{Direction, GraphIndex, GraphView};
use relgo_pattern::Pattern;
use relgo_storage::{ScalarExpr, Table};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-batch shared operator state (the batched-serving seam): when N
/// rebound instances of one plan skeleton execute as a batch, the per-query
/// setup that does not depend on the instance's literals is built once here
/// and reused — the hash-fallback adjacency multimaps (an `O(E log E)`
/// build per `EXPAND` in unindexed regimes) and the per-table-row predicate
/// pass masks of *structural* (literal-identical) predicates. Adjacencies
/// are keyed by `(edge label, direction)`; masks by `(table name,
/// predicate)` compared *structurally* (a rendered-string key could be
/// forged by string literals containing operator text), so
/// instance-specific predicates simply miss.
type MaskCache = Vec<(String, ScalarExpr, Arc<Vec<bool>>)>;

#[derive(Default)]
pub struct BatchState {
    hashed: Mutex<FxHashMap<(LabelId, Direction), Arc<HashedAdj>>>,
    masks: Mutex<MaskCache>,
}

impl BatchState {
    /// Fresh shared state for one batch.
    pub fn new() -> BatchState {
        BatchState::default()
    }
}

/// Execution context for the graph component.
pub struct GraphExecContext<'a> {
    /// The graph view (tables + λ resolution).
    pub view: &'a GraphView,
    /// The pattern being matched (for edge endpoint metadata).
    pub pattern: &'a Pattern,
    /// Whether VE/EV indexes may be used.
    pub use_index: bool,
    /// Maximum rows any intermediate may reach before aborting with
    /// `ResourceExhausted` (models the paper's OOM runs).
    pub row_limit: usize,
    /// Intra-operator worker threads (1 = serial).
    pub threads: usize,
    /// Optional wall-clock budget: every morsel boundary (and the serial
    /// row guard) checks it, so expiry aborts within one morsel's work.
    pub deadline: Option<TimeBudget>,
    /// Shared per-batch state (`None` outside batched execution).
    pub batch: Option<&'a BatchState>,
    /// Profile collection target (`None` = profiling off; the hot path
    /// pays one branch per operator). Only the plan-driving thread touches
    /// it — morsel workers never see the sink.
    pub profile: Option<&'a ProfileSink>,
}

impl<'a> GraphExecContext<'a> {
    fn index(&self) -> Result<&'a GraphIndex> {
        self.view
            .index()
            .map(|a| a.as_ref())
            .ok_or_else(|| RelGoError::execution("graph index required but not built"))
    }

    /// Post-materialization row-limit check for the serial operators
    /// (scans, joins). The morsel-parallel operators use a shared
    /// [`RowBudget`] instead, which charges projected sizes *before*
    /// materializing; both trip at the same cumulative boundary. Also the
    /// serial operators' deadline checkpoint.
    fn guard(&self, rows: usize) -> Result<()> {
        self.check_deadline()?;
        if rows > self.row_limit {
            return Err(RelGoError::ResourceExhausted(format!(
                "intermediate graph relation of {rows} rows exceeds the {} row budget",
                self.row_limit
            )));
        }
        Ok(())
    }

    /// Morsel-boundary deadline check: called once per morsel by the
    /// parallel operators (cheap relative to a morsel's work), erroring
    /// with `DeadlineExceeded` once the budget expires.
    #[inline]
    fn check_deadline(&self) -> Result<()> {
        match &self.deadline {
            Some(deadline) => deadline.check(),
            None => Ok(()),
        }
    }
}

/// Execute a graph plan into a chunk of bindings.
pub fn execute_graph(op: &GraphOp, ctx: &GraphExecContext<'_>) -> Result<GraphChunk> {
    let nv = ctx.pattern.vertex_count();
    let ne = ctx.pattern.edge_count();
    // Reserve the pre-order profile slot before recursing into inputs, so
    // run-time op ids line up with plan-time metas and EXPLAIN lines. Each
    // arm records (rows in, morsels dispatched, own-work start): the timer
    // starts after inputs return, so a parent's elapsed excludes children.
    let op_id = ctx.profile.map(|sink| sink.begin(op.kind()));
    let (rows_in, morsels, t0, out) = match op {
        GraphOp::ScanVertex { v, predicate, .. } => {
            let t0 = op_id.map(|_| Instant::now());
            let label = ctx.pattern.vertex(*v).label;
            let table = ctx.view.vertex_table(label);
            let rows: Vec<RowId> = match predicate {
                Some(p) => p.filter(table)?,
                None => (0..table.num_rows() as RowId).collect(),
            };
            ctx.guard(rows.len())?;
            (0, 0, t0, GraphChunk::from_vertex(nv, ne, *v, rows))
        }
        GraphOp::ScanEdge { e, predicate, .. } => {
            let t0 = op_id.map(|_| Instant::now());
            (0, 0, t0, scan_edge(*e, predicate.as_ref(), ctx)?)
        }
        GraphOp::Expand {
            input,
            from,
            edge,
            to,
            dir,
            emit_edge,
            edge_predicate,
            vertex_predicate,
            ..
        } => {
            let inp = execute_graph(input, ctx)?;
            let t0 = op_id.map(|_| Instant::now());
            let out = expand(
                &inp,
                *from,
                *edge,
                *to,
                *dir,
                *emit_edge,
                edge_predicate.as_ref(),
                vertex_predicate.as_ref(),
                ctx,
            )?;
            (inp.len(), morsel_count(inp.len(), ctx), t0, out)
        }
        GraphOp::ExpandIntersect {
            input,
            legs,
            to,
            emit_edges,
            vertex_predicate,
            ..
        } => {
            let inp = execute_graph(input, ctx)?;
            let t0 = op_id.map(|_| Instant::now());
            let out =
                expand_intersect(&inp, legs, *to, *emit_edges, vertex_predicate.as_ref(), ctx)?;
            (inp.len(), morsel_count(inp.len(), ctx), t0, out)
        }
        GraphOp::JoinSub {
            left,
            right,
            on_vertices,
            on_edges,
            ..
        } => {
            let l = execute_graph(left, ctx)?;
            let r = execute_graph(right, ctx)?;
            let t0 = op_id.map(|_| Instant::now());
            let out = join_chunks(&l, &r, on_vertices, on_edges, ctx)?;
            (l.len() + r.len(), 0, t0, out)
        }
        GraphOp::FilterVertex {
            input,
            v,
            predicate,
            ..
        } => {
            let inp = execute_graph(input, ctx)?;
            let t0 = op_id.map(|_| Instant::now());
            let out = filter_vertex(&inp, *v, predicate, ctx)?;
            (inp.len(), morsel_count(inp.len(), ctx), t0, out)
        }
    };
    if let (Some(sink), Some(id)) = (ctx.profile, op_id) {
        // Expand and intersect charge exactly their materialized rows
        // against the shared row budget; the other operators guard after
        // the fact and charge nothing.
        let charged = match op {
            GraphOp::Expand { .. } | GraphOp::ExpandIntersect { .. } => out.len() as u64,
            _ => 0,
        };
        let elapsed = t0.map(|t| t.elapsed()).unwrap_or_default();
        sink.finish(
            id,
            rows_in as u64,
            out.len() as u64,
            morsels,
            elapsed,
            charged,
        );
    }
    Ok(out)
}

/// Morsels a morsel-parallel operator dispatches for `rows` input rows.
fn morsel_count(rows: usize, ctx: &GraphExecContext<'_>) -> u64 {
    if ctx.profile.is_none() {
        return 0;
    }
    morsel::morsel_count(rows, morsel::DEFAULT_MORSEL_ROWS) as u64
}

/// `SCAN_EDGE`: bind the edge and both endpoints.
fn scan_edge(
    e: usize,
    predicate: Option<&ScalarExpr>,
    ctx: &GraphExecContext<'_>,
) -> Result<GraphChunk> {
    let pe = ctx.pattern.edge(e);
    let table = ctx.view.edge_table(pe.label);
    let rows: Vec<RowId> = match predicate {
        Some(p) => p.filter(table)?,
        None => (0..table.num_rows() as RowId).collect(),
    };
    ctx.guard(rows.len())?;
    let mut srcs = Vec::with_capacity(rows.len());
    let mut dsts = Vec::with_capacity(rows.len());
    if ctx.use_index {
        let idx = ctx.index()?;
        for &r in &rows {
            srcs.push(idx.edge_src(pe.label, r));
            dsts.push(idx.edge_dst(pe.label, r));
        }
    } else {
        for &r in &rows {
            srcs.push(ctx.view.resolve_src(pe.label, r)?);
            dsts.push(ctx.view.resolve_dst(pe.label, r)?);
        }
    }
    // Src column seeds the chunk; dst and the edge binding extend it.
    let base = GraphChunk::from_vertex(
        ctx.pattern.vertex_count(),
        ctx.pattern.edge_count(),
        pe.src,
        srcs,
    );
    let gather: Vec<usize> = (0..rows.len()).collect();
    base.extend(&gather, Some((pe.dst, dsts)), vec![(e, rows)])
}

/// The hash-join adjacency fallback in flat CSR-like form (see
/// [`Adjacency::Hashed`]); `Arc`-shared so a batch builds it once.
struct HashedAdj {
    /// from-vertex row → `(start, end)` range into the flat arrays.
    buckets: FxHashMap<RowId, (u32, u32)>,
    edge_rid: Vec<RowId>,
    nbr_rid: Vec<RowId>,
}

/// Adjacency provider for one `(edge label, direction)`: the VE-index, or a
/// transient hash multimap over the edge relation (the hash-join fallback),
/// stored as flat CSR-like arrays so probes borrow slices instead of
/// collecting per-probe `Vec`s.
enum Adjacency<'a> {
    Indexed {
        index: &'a GraphIndex,
        label: LabelId,
        dir: Direction,
    },
    Hashed(Arc<HashedAdj>),
}

impl<'a> Adjacency<'a> {
    fn build(edge: usize, dir: Direction, ctx: &'a GraphExecContext<'_>) -> Result<Adjacency<'a>> {
        let pe = ctx.pattern.edge(edge);
        if ctx.use_index {
            return Ok(Adjacency::Indexed {
                index: ctx.index()?,
                label: pe.label,
                dir,
            });
        }
        // Batched execution: every instance of the skeleton expands the
        // same (label, dir), and the multimap is literal-independent — the
        // first query in the batch builds it, the rest reuse it.
        if let Some(batch) = ctx.batch {
            if let Some(adj) = batch.hashed.lock().unwrap().get(&(pe.label, dir)) {
                return Ok(Adjacency::Hashed(Arc::clone(adj)));
            }
        }
        // Hash fallback: resolve both endpoints of every edge row through
        // the λ key indexes, sort by (from, neighbor) — intersection logic
        // relies on neighbor-sorted buckets — and record each from-vertex's
        // contiguous range, with the bucket map pre-reserved to the upper
        // bound of distinct keys.
        let table = ctx.view.edge_table(pe.label);
        let m = table.num_rows();
        let mut triples: Vec<(RowId, RowId, RowId)> = Vec::with_capacity(m);
        for r in 0..m as RowId {
            let s = ctx.view.resolve_src(pe.label, r)?;
            let t = ctx.view.resolve_dst(pe.label, r)?;
            let (from, to) = match dir {
                Direction::Out => (s, t),
                Direction::In => (t, s),
            };
            triples.push((from, r, to));
        }
        // Same total order as the VE-index CSR — (from, neighbor, edge) —
        // so parallel data edges enumerate identically in both regimes.
        triples.sort_unstable_by_key(|&(f, e, n)| (f, n, e));
        let mut buckets: FxHashMap<RowId, (u32, u32)> =
            FxHashMap::with_capacity_and_hasher(m, Default::default());
        let mut edge_rid = Vec::with_capacity(m);
        let mut nbr_rid = Vec::with_capacity(m);
        for (i, &(from, e, to)) in triples.iter().enumerate() {
            edge_rid.push(e);
            nbr_rid.push(to);
            buckets
                .entry(from)
                .and_modify(|r| r.1 = i as u32 + 1)
                .or_insert((i as u32, i as u32 + 1));
        }
        let adj = Arc::new(HashedAdj {
            buckets,
            edge_rid,
            nbr_rid,
        });
        if let Some(batch) = ctx.batch {
            batch
                .hashed
                .lock()
                .unwrap()
                .insert((pe.label, dir), Arc::clone(&adj));
        }
        Ok(Adjacency::Hashed(adj))
    }

    /// `(edges, neighbors)` adjacent to `v`, sorted by neighbor — borrowed,
    /// not copied.
    #[inline]
    fn neighbors(&self, v: RowId) -> (&[RowId], &[RowId]) {
        match self {
            Adjacency::Indexed { index, label, dir } => index.neighbors(*label, *dir, v),
            Adjacency::Hashed(adj) => match adj.buckets.get(&v) {
                Some(&(lo, hi)) => (
                    &adj.edge_rid[lo as usize..hi as usize],
                    &adj.nbr_rid[lo as usize..hi as usize],
                ),
                None => (&[], &[]),
            },
        }
    }

    /// Number of adjacency entries of `v`.
    #[inline]
    fn degree(&self, v: RowId) -> usize {
        match self {
            Adjacency::Indexed { index, label, dir } => index.degree(*label, *dir, v),
            Adjacency::Hashed(adj) => adj
                .buckets
                .get(&v)
                .map_or(0, |&(lo, hi)| (hi - lo) as usize),
        }
    }
}

/// Precompute a per-table-row pass mask for `pred` when the expansion will
/// touch enough entries (`entries`, with repeats) to amortize evaluating
/// the predicate once per table row instead of once per adjacency entry.
/// Under batched execution, masks are shared through [`BatchState`] keyed
/// by `(table, rendered predicate)`: structural predicates (identical
/// across the batch's rebound instances) are computed once, and a cached
/// mask is used even below the volume threshold — it is already paid for.
fn predicate_mask(
    pred: Option<&ScalarExpr>,
    table: &Table,
    entries: usize,
    batch: Option<&BatchState>,
) -> Result<Option<Arc<Vec<bool>>>> {
    let Some(p) = pred else { return Ok(None) };
    if let Some(batch) = batch {
        // A batch caches a handful of masks; linear scan with structural
        // predicate equality (never aliasable, unlike a rendered string).
        let masks = batch.masks.lock().unwrap();
        if let Some((_, _, mask)) = masks
            .iter()
            .find(|(t, cached, _)| t == table.name() && cached == p)
        {
            return Ok(Some(Arc::clone(mask)));
        }
    }
    let n = table.num_rows();
    if entries < n / 4 {
        return Ok(None);
    }
    let mut mask = vec![false; n];
    for r in p.filter(table)? {
        mask[r as usize] = true;
    }
    let mask = Arc::new(mask);
    if let Some(batch) = batch {
        batch
            .masks
            .lock()
            .unwrap()
            .push((table.name().to_string(), p.clone(), Arc::clone(&mask)));
    }
    Ok(Some(mask))
}

/// Whether `row` passes `pred`, through the precomputed `mask` when present.
#[inline]
fn passes(
    mask: &Option<Arc<Vec<bool>>>,
    pred: Option<&ScalarExpr>,
    table: &Table,
    row: RowId,
) -> Result<bool> {
    if let Some(m) = mask {
        return Ok(m[row as usize]);
    }
    match pred {
        None => Ok(true),
        Some(p) => p.matches(table, row),
    }
}

/// `EXPAND` (fused or edge-materializing), morsel-parallel over input rows.
#[allow(clippy::too_many_arguments)]
fn expand(
    input: &GraphChunk,
    from: usize,
    edge: usize,
    to: usize,
    dir: Direction,
    emit_edge: bool,
    edge_predicate: Option<&ScalarExpr>,
    vertex_predicate: Option<&ScalarExpr>,
    ctx: &GraphExecContext<'_>,
) -> Result<GraphChunk> {
    let pe = ctx.pattern.edge(edge);
    let adj = Adjacency::build(edge, dir, ctx)?;
    let etable = ctx.view.edge_table(pe.label);
    let vtable = ctx.view.vertex_table(ctx.pattern.vertex(to).label);
    let from_col = input.vertex_col(from)?;

    // Pre-pass: per-row degrees (memoized — the hash-fallback probe is not
    // free) size the output columns and decide whether masks pay off.
    let degs: Vec<usize> = from_col.iter().map(|&v| adj.degree(v)).collect();
    let total: usize = degs.iter().sum();
    let emask = predicate_mask(edge_predicate, etable, total, ctx.batch)?;
    let vmask = predicate_mask(vertex_predicate, vtable, total, ctx.batch)?;
    let unfiltered = edge_predicate.is_none() && vertex_predicate.is_none();

    let budget = RowBudget::new(ctx.row_limit);
    type ExpandPart = (Vec<usize>, Vec<RowId>, Vec<RowId>);
    let parts: Vec<ExpandPart> = morsel::run_morsels(
        from_col.len(),
        ctx.threads,
        morsel::DEFAULT_MORSEL_ROWS,
        |_, range| {
            ctx.check_deadline()?;
            let cap: usize = degs[range.clone()].iter().sum();
            let mut gather = Vec::with_capacity(cap);
            let mut to_col = Vec::with_capacity(cap);
            let mut edge_col = Vec::with_capacity(if emit_edge { cap } else { 0 });
            // Reusable per-row buffer of predicate survivors.
            let mut hits: Vec<(RowId, RowId)> = Vec::new();
            for i in range {
                let (es, ns) = adj.neighbors(from_col[i]);
                if unfiltered {
                    // Projected output size is exact: charge before
                    // materializing anything.
                    budget.charge(es.len())?;
                    gather.resize(gather.len() + es.len(), i);
                    to_col.extend_from_slice(ns);
                    if emit_edge {
                        edge_col.extend_from_slice(es);
                    }
                } else {
                    hits.clear();
                    for (&erow, &nrow) in es.iter().zip(ns.iter()) {
                        if passes(&emask, edge_predicate, etable, erow)?
                            && passes(&vmask, vertex_predicate, vtable, nrow)?
                        {
                            hits.push((erow, nrow));
                        }
                    }
                    budget.charge(hits.len())?;
                    for &(erow, nrow) in &hits {
                        gather.push(i);
                        to_col.push(nrow);
                        if emit_edge {
                            edge_col.push(erow);
                        }
                    }
                }
            }
            Ok((gather, to_col, edge_col))
        },
    )?;

    let out_rows: usize = parts.iter().map(|p| p.0.len()).sum();
    let mut gather = Vec::with_capacity(out_rows);
    let mut to_col = Vec::with_capacity(out_rows);
    let mut edge_col = Vec::with_capacity(if emit_edge { out_rows } else { 0 });
    for (g, t, e) in parts {
        gather.extend_from_slice(&g);
        to_col.extend_from_slice(&t);
        edge_col.extend_from_slice(&e);
    }
    let new_edges = if emit_edge {
        vec![(edge, edge_col)]
    } else {
        Vec::new()
    };
    input.extend(&gather, Some((to, to_col)), new_edges)
}

/// `EXPAND_INTERSECT`: per input row, intersect the (sorted) adjacency
/// lists of every leg; parallel data edges multiply matches, preserving
/// homomorphism bag semantics. Morsel-parallel over input rows.
fn expand_intersect(
    input: &GraphChunk,
    legs: &[StarLeg],
    to: usize,
    emit_edges: bool,
    vertex_predicate: Option<&ScalarExpr>,
    ctx: &GraphExecContext<'_>,
) -> Result<GraphChunk> {
    if legs.len() < 2 {
        return Err(RelGoError::execution(
            "EXPAND_INTERSECT requires at least two legs",
        ));
    }
    let adjs: Vec<Adjacency<'_>> = legs
        .iter()
        .map(|l| Adjacency::build(l.edge, l.dir, ctx))
        .collect::<Result<_>>()?;
    let etables: Vec<_> = legs
        .iter()
        .map(|l| ctx.view.edge_table(ctx.pattern.edge(l.edge).label))
        .collect();
    let epreds: Vec<Option<&ScalarExpr>> = legs
        .iter()
        .map(|l| ctx.pattern.edge(l.edge).predicate.as_ref())
        .collect();
    let vtable = ctx.view.vertex_table(ctx.pattern.vertex(to).label);
    // Hoisted binding columns: one slice per leg, no per-row Result lookup.
    let from_cols: Vec<&[RowId]> = legs
        .iter()
        .map(|l| input.vertex_col(l.from))
        .collect::<Result<_>>()?;
    // Candidate volume estimate for the mask heuristic: the intersection
    // only touches entries of the shortest list, so sum the per-row
    // *minimum* leg degree (leg 0's full degree would overestimate and
    // trigger full-table predicate evaluation for tiny intersections).
    let entries: usize = (0..input.len())
        .map(|row| {
            adjs.iter()
                .enumerate()
                .map(|(leg_i, adj)| adj.degree(from_cols[leg_i][row]))
                .min()
                .unwrap_or(0)
        })
        .sum();
    let emasks: Vec<Option<Arc<Vec<bool>>>> = (0..legs.len())
        .map(|i| predicate_mask(epreds[i], etables[i], entries, ctx.batch))
        .collect::<Result<_>>()?;
    let vmask = predicate_mask(vertex_predicate, vtable, entries, ctx.batch)?;

    let budget = RowBudget::new(ctx.row_limit);
    type EiPart = (Vec<usize>, Vec<RowId>, Vec<Vec<RowId>>);
    let parts: Vec<EiPart> = morsel::run_morsels(
        input.len(),
        ctx.threads,
        morsel::DEFAULT_MORSEL_ROWS,
        |_, range| {
            ctx.check_deadline()?;
            let mut gather = Vec::new();
            let mut to_col: Vec<RowId> = Vec::new();
            let mut edge_cols: Vec<Vec<RowId>> = vec![Vec::new(); legs.len()];
            // Reusable per-row buffers (performance-guide workhorse pattern).
            let mut lists: Vec<(&[RowId], &[RowId])> = Vec::with_capacity(legs.len());
            let mut order: Vec<usize> = Vec::with_capacity(legs.len());
            let mut per_leg: Vec<Vec<RowId>> = vec![Vec::new(); legs.len()];
            let mut idx: Vec<usize> = Vec::with_capacity(legs.len());
            for row in range {
                lists.clear();
                for (leg_i, adj) in adjs.iter().enumerate() {
                    lists.push(adj.neighbors(from_cols[leg_i][row]));
                }
                // Intersect candidate neighbor sets, shortest first.
                order.clear();
                order.extend(0..legs.len());
                order.sort_by_key(|&i| lists[i].1.len());
                let (first, rest) = order.split_first().expect("≥2 legs");
                'candidate: for (pos, &w) in lists[*first].1.iter().enumerate() {
                    // Skip duplicate runs in the first list; multiplicity is
                    // handled by enumerating edge combinations below.
                    if pos > 0 && lists[*first].1[pos - 1] == w {
                        continue;
                    }
                    for &i in rest {
                        if lists[i].1.binary_search(&w).is_err() {
                            continue 'candidate;
                        }
                    }
                    if !passes(&vmask, vertex_predicate, vtable, w)? {
                        continue;
                    }
                    // Edge candidates per leg pointing at w (predicate-
                    // filtered); the projected row count is the product.
                    let mut combos = 1usize;
                    for (i, &(es, ns)) in lists.iter().enumerate() {
                        let lo = ns.partition_point(|&x| x < w);
                        let hi = ns.partition_point(|&x| x <= w);
                        let cands = &mut per_leg[i];
                        cands.clear();
                        for &erow in &es[lo..hi] {
                            if passes(&emasks[i], epreds[i], etables[i], erow)? {
                                cands.push(erow);
                            }
                        }
                        if cands.is_empty() {
                            continue 'candidate;
                        }
                        // Saturate: a wrapped product would undercharge the
                        // budget — the guard must trip, not overflow.
                        combos = combos.saturating_mul(cands.len());
                    }
                    // Charge the projected combination count before
                    // materializing it.
                    budget.charge(combos)?;
                    // Cartesian product over per-leg edge candidates
                    // (usually 1×1).
                    idx.clear();
                    idx.resize(per_leg.len(), 0);
                    loop {
                        gather.push(row);
                        to_col.push(w);
                        if emit_edges {
                            for (i, &j) in idx.iter().enumerate() {
                                edge_cols[i].push(per_leg[i][j]);
                            }
                        }
                        // Advance the mixed-radix counter.
                        let mut k = 0;
                        loop {
                            if k == idx.len() {
                                break;
                            }
                            idx[k] += 1;
                            if idx[k] < per_leg[k].len() {
                                break;
                            }
                            idx[k] = 0;
                            k += 1;
                        }
                        if k == idx.len() {
                            break;
                        }
                    }
                }
            }
            Ok((gather, to_col, edge_cols))
        },
    )?;

    let out_rows: usize = parts.iter().map(|p| p.0.len()).sum();
    let mut gather = Vec::with_capacity(out_rows);
    let mut to_col = Vec::with_capacity(out_rows);
    // (`vec![..; n]` would clone away the capacity hint.)
    let mut edge_cols: Vec<Vec<RowId>> = (0..legs.len())
        .map(|_| Vec::with_capacity(out_rows))
        .collect();
    for (g, t, ecols) in parts {
        gather.extend_from_slice(&g);
        to_col.extend_from_slice(&t);
        for (i, col) in ecols.into_iter().enumerate() {
            edge_cols[i].extend_from_slice(&col);
        }
    }
    let new_edges = if emit_edges {
        legs.iter()
            .map(|l| l.edge)
            .zip(edge_cols)
            .collect::<Vec<_>>()
    } else {
        Vec::new()
    };
    input.extend(&gather, Some((to, to_col)), new_edges)
}

/// `FILTER_VERTEX`: prune rows whose binding of `v` fails the predicate,
/// morsel-parallel with a precomputed pass mask when worthwhile.
fn filter_vertex(
    input: &GraphChunk,
    v: usize,
    predicate: &ScalarExpr,
    ctx: &GraphExecContext<'_>,
) -> Result<GraphChunk> {
    let label = ctx.pattern.vertex(v).label;
    let table = ctx.view.vertex_table(label);
    let col = input.vertex_col(v)?;
    let mask = predicate_mask(Some(predicate), table, col.len(), ctx.batch)?;
    let parts: Vec<Vec<usize>> = morsel::run_morsels(
        col.len(),
        ctx.threads,
        morsel::DEFAULT_MORSEL_ROWS,
        |_, range| {
            ctx.check_deadline()?;
            let mut keep = Vec::new();
            for i in range {
                if passes(&mask, Some(predicate), table, col[i])? {
                    keep.push(i);
                }
            }
            Ok(keep)
        },
    )?;
    let keep: Vec<usize> = parts.concat();
    Ok(input.take(&keep))
}

/// Hash join of two chunks on common element bindings.
fn join_chunks(
    left: &GraphChunk,
    right: &GraphChunk,
    on_vertices: &[usize],
    on_edges: &[usize],
    ctx: &GraphExecContext<'_>,
) -> Result<GraphChunk> {
    // Build on the smaller side.
    let (build, probe, swapped) = if left.len() <= right.len() {
        (left, right, false)
    } else {
        (right, left, true)
    };
    let key_of = |chunk: &GraphChunk, row: usize| -> Result<Vec<RowId>> {
        let mut k = Vec::with_capacity(on_vertices.len() + on_edges.len());
        for &v in on_vertices {
            k.push(chunk.vertex_at(v, row)?);
        }
        for &e in on_edges {
            k.push(chunk.edge_at(e, row)?);
        }
        Ok(k)
    };
    let mut table: FxHashMap<Vec<RowId>, Vec<usize>> = FxHashMap::default();
    for row in 0..build.len() {
        table.entry(key_of(build, row)?).or_default().push(row);
    }
    let mut out = GraphChunk::join_layout(left, right);
    for prow in 0..probe.len() {
        if let Some(rows) = table.get(&key_of(probe, prow)?) {
            for &brow in rows {
                let (li, ri) = if swapped { (prow, brow) } else { (brow, prow) };
                out.push_joined(left, li, right, ri)?;
                // Guard inside the loop: joins are where blow-ups happen.
            }
            ctx.guard(out.len())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::{DataType, LabelId, Value};
    use relgo_core::graph_plan::PlanAnnotation;
    use relgo_graph::RGMapping;
    use relgo_pattern::PatternBuilder;
    use relgo_storage::table::table_of;
    use relgo_storage::Database;

    fn fig2_view() -> GraphView {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
                ("date", DataType::Date),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into(), Value::Date(31)],
                vec![2.into(), 2.into(), 100.into(), Value::Date(28)],
                vec![3.into(), 2.into(), 200.into(), Value::Date(20)],
                vec![4.into(), 3.into(), 200.into(), Value::Date(21)],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        g
    }

    fn wedge_pattern() -> relgo_pattern::Pattern {
        // (p1)-[Likes]->(m)<-[Likes]-(p2)
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let p2 = b.vertex("p2", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, m, LabelId(0)).unwrap();
        b.edge(p2, m, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    fn ctx<'a>(
        view: &'a GraphView,
        pattern: &'a relgo_pattern::Pattern,
        idx: bool,
    ) -> GraphExecContext<'a> {
        GraphExecContext {
            view,
            pattern,
            use_index: idx,
            row_limit: 1_000_000,
            threads: 1,
            deadline: None,
            batch: None,
            profile: None,
        }
    }

    fn ann() -> PlanAnnotation {
        PlanAnnotation::default()
    }

    #[test]
    fn scan_and_expand_indexed_vs_hashed_agree() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::Expand {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            from: 0,
            edge: 0,
            to: 2,
            dir: Direction::Out,
            emit_edge: true,
            edge_predicate: None,
            vertex_predicate: None,
            ann: ann(),
        };
        let with = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        let without = execute_graph(&plan, &ctx(&view, &pat, false)).unwrap();
        assert_eq!(with.len(), 4);
        assert_eq!(without.len(), 4);
        let mut a: Vec<(RowId, RowId)> = (0..4)
            .map(|i| (with.vertex_at(0, i).unwrap(), with.edge_at(0, i).unwrap()))
            .collect();
        let mut b: Vec<(RowId, RowId)> = (0..4)
            .map(|i| {
                (
                    without.vertex_at(0, i).unwrap(),
                    without.edge_at(0, i).unwrap(),
                )
            })
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn hashed_adjacency_slices_are_neighbor_sorted() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let c = ctx(&view, &pat, false);
        let adj = Adjacency::build(0, Direction::Out, &c).unwrap();
        for v in 0..3 {
            let (es, ns) = adj.neighbors(v);
            assert_eq!(es.len(), ns.len());
            assert_eq!(adj.degree(v), ns.len());
            assert!(ns.windows(2).all(|w| w[0] <= w[1]), "sorted bucket");
        }
        // Bob (row 1) likes both messages.
        assert_eq!(adj.neighbors(1).1, &[0, 1]);
        // The indexed and hashed providers agree entry-for-entry.
        let idx_ctx = ctx(&view, &pat, true);
        let idx_adj = Adjacency::build(0, Direction::Out, &idx_ctx).unwrap();
        for v in 0..3 {
            assert_eq!(adj.neighbors(v), idx_adj.neighbors(v));
        }
    }

    #[test]
    fn batch_state_shares_hashed_adjacency_and_masks() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let batch = BatchState::new();
        let mut c = ctx(&view, &pat, false);
        c.batch = Some(&batch);
        let a = Adjacency::build(0, Direction::Out, &c).unwrap();
        let b = Adjacency::build(0, Direction::Out, &c).unwrap();
        match (&a, &b) {
            (Adjacency::Hashed(x), Adjacency::Hashed(y)) => {
                assert!(
                    Arc::ptr_eq(x, y),
                    "second build reuses the batch's multimap"
                );
            }
            _ => panic!("hash fallback expected"),
        }
        // Distinct (label, dir) keys stay distinct.
        let rev = Adjacency::build(0, Direction::In, &c).unwrap();
        match (&a, &rev) {
            (Adjacency::Hashed(x), Adjacency::Hashed(y)) => assert!(!Arc::ptr_eq(x, y)),
            _ => panic!("hash fallback expected"),
        }
        // Identical predicates share one mask; even below the volume
        // threshold the cached mask is reused.
        let table = view.vertex_table(LabelId(0));
        let pred = ScalarExpr::col_eq(1, "Bob");
        let m1 = predicate_mask(Some(&pred), table, usize::MAX, Some(&batch))
            .unwrap()
            .expect("mask built");
        let m2 = predicate_mask(Some(&pred), table, 0, Some(&batch))
            .unwrap()
            .expect("cached mask served below threshold");
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(m1.as_slice(), &[false, true, false]);
        // Without a batch, the volume threshold still gates mask
        // construction (the 4-row Likes table has a nonzero threshold).
        let likes = view.edge_table(LabelId(0));
        let epred = ScalarExpr::col_cmp(3, relgo_storage::BinaryOp::Ge, Value::Date(28));
        assert!(predicate_mask(Some(&epred), likes, 0, None)
            .unwrap()
            .is_none());
    }

    #[test]
    fn parallel_expand_is_bit_identical_to_serial() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::Expand {
            input: Box::new(GraphOp::Expand {
                input: Box::new(GraphOp::ScanVertex {
                    v: 0,
                    predicate: None,
                    ann: ann(),
                }),
                from: 0,
                edge: 0,
                to: 2,
                dir: Direction::Out,
                emit_edge: true,
                edge_predicate: None,
                vertex_predicate: None,
                ann: ann(),
            }),
            from: 2,
            edge: 1,
            to: 1,
            dir: Direction::In,
            emit_edge: true,
            edge_predicate: None,
            vertex_predicate: None,
            ann: ann(),
        };
        let serial = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        for threads in [2usize, 8] {
            let mut c = ctx(&view, &pat, true);
            c.threads = threads;
            let par = execute_graph(&plan, &c).unwrap();
            assert_eq!(par.len(), serial.len());
            for row in 0..serial.len() {
                for v in 0..3 {
                    assert_eq!(
                        par.vertex_at(v, row).unwrap(),
                        serial.vertex_at(v, row).unwrap()
                    );
                }
                for e in 0..2 {
                    assert_eq!(
                        par.edge_at(e, row).unwrap(),
                        serial.edge_at(e, row).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn scan_edge_binds_endpoints() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::ScanEdge {
            e: 0,
            predicate: None,
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.binds_vertex(0));
        assert!(out.binds_vertex(2));
        assert!(out.binds_edge(0));
        // Edge row 1 (l2): Bob (row 1) likes m1 (row 0).
        let row = (0..4).find(|&i| out.edge_at(0, i).unwrap() == 1).unwrap();
        assert_eq!(out.vertex_at(0, row).unwrap(), 1);
        assert_eq!(out.vertex_at(2, row).unwrap(), 0);
    }

    #[test]
    fn wedge_via_intersect_matches_count() {
        let view = fig2_view();
        let pat = wedge_pattern();
        // Bind p1 and p2 with a cross product (join on no keys), then
        // intersect their Likes adjacencies to find m.
        let cross = GraphOp::JoinSub {
            left: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            right: Box::new(GraphOp::ScanVertex {
                v: 1,
                predicate: None,
                ann: ann(),
            }),
            on_vertices: vec![],
            on_edges: vec![],
            ann: ann(),
        };
        let plan = GraphOp::ExpandIntersect {
            input: Box::new(cross),
            legs: vec![
                StarLeg {
                    from: 0,
                    edge: 0,
                    dir: Direction::Out,
                },
                StarLeg {
                    from: 1,
                    edge: 1,
                    dir: Direction::Out,
                },
            ],
            to: 2,
            emit_edges: true,
            vertex_predicate: None,
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        // Homomorphic wedges: 8 (m1: {T,B}², m2: {B,D}²).
        assert_eq!(out.len(), 8);
        // Parallel intersection merges morsels in order: bit-identical.
        let mut c = ctx(&view, &pat, true);
        c.threads = 4;
        let par = execute_graph(&plan, &c).unwrap();
        assert_eq!(par.len(), 8);
        for row in 0..8 {
            for v in 0..3 {
                assert_eq!(
                    par.vertex_at(v, row).unwrap(),
                    out.vertex_at(v, row).unwrap()
                );
            }
        }
        // Fused EI preserves multiplicity.
        let fused = match plan {
            GraphOp::ExpandIntersect {
                input, legs, to, ..
            } => GraphOp::ExpandIntersect {
                input,
                legs,
                to,
                emit_edges: false,
                vertex_predicate: None,
                ann: ann(),
            },
            _ => unreachable!(),
        };
        let out2 = execute_graph(&fused, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out2.len(), 8);
        assert!(!out2.binds_edge(0));
    }

    #[test]
    fn join_on_shared_vertex() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let left = GraphOp::ScanEdge {
            e: 0,
            predicate: None,
            ann: ann(),
        };
        let right = GraphOp::ScanEdge {
            e: 1,
            predicate: None,
            ann: ann(),
        };
        let plan = GraphOp::JoinSub {
            left: Box::new(left),
            right: Box::new(right),
            on_vertices: vec![2],
            on_edges: vec![],
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out.len(), 8, "wedges again, via join");
    }

    #[test]
    fn filter_vertex_prunes_bindings() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::FilterVertex {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            v: 0,
            predicate: ScalarExpr::col_eq(1, "Bob"),
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.vertex_at(0, 0).unwrap(), 1);
    }

    #[test]
    fn row_limit_aborts_expansion_before_materializing() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::Expand {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            from: 0,
            edge: 0,
            to: 2,
            dir: Direction::Out,
            emit_edge: false,
            edge_predicate: None,
            vertex_predicate: None,
            ann: ann(),
        };
        for threads in [1usize, 4] {
            let mut c = ctx(&view, &pat, true);
            c.row_limit = 2;
            c.threads = threads;
            match execute_graph(&plan, &c) {
                Err(RelGoError::ResourceExhausted(_)) => {}
                other => panic!("expected resource exhaustion, got {other:?}"),
            }
        }
    }

    #[test]
    fn edge_predicate_applied_during_expand() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::Expand {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            from: 0,
            edge: 0,
            to: 2,
            dir: Direction::Out,
            emit_edge: false,
            edge_predicate: Some(ScalarExpr::col_cmp(
                3,
                relgo_storage::BinaryOp::Ge,
                Value::Date(28),
            )),
            vertex_predicate: None,
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out.len(), 2, "likes with date ≥ 28: l1, l2");
    }
}
