//! Interpreter for physical graph plans ([`GraphOp`] trees).
//!
//! Two execution regimes, selected by [`GraphExecContext::use_index`]:
//!
//! * **indexed** — `EXPAND`/`EXPAND_INTERSECT` traverse the VE-index;
//!   `SCAN_EDGE` reads endpoints from the EV-index (GRainDB's predefined
//!   join);
//! * **unindexed** — `EXPAND` builds a transient hash multimap over the
//!   edge relation (a hash join, which is what DuckDB-like and RelGoHash
//!   executions pay); endpoint resolution goes through the λ key indexes.
//!
//! Bag semantics are preserved exactly: expansions iterate *adjacency
//! entries* (one output row per data edge), so trimming the edge column
//! never changes multiplicities.

use crate::chunk::GraphChunk;
use relgo_common::{FxHashMap, RelGoError, Result, RowId};
use relgo_core::graph_plan::{GraphOp, StarLeg};
use relgo_graph::{Direction, GraphIndex, GraphView};
use relgo_pattern::Pattern;
use relgo_storage::ScalarExpr;

/// Execution context for the graph component.
pub struct GraphExecContext<'a> {
    /// The graph view (tables + λ resolution).
    pub view: &'a GraphView,
    /// The pattern being matched (for edge endpoint metadata).
    pub pattern: &'a Pattern,
    /// Whether VE/EV indexes may be used.
    pub use_index: bool,
    /// Maximum rows any intermediate may reach before aborting with
    /// `ResourceExhausted` (models the paper's OOM runs).
    pub row_limit: usize,
}

impl<'a> GraphExecContext<'a> {
    fn index(&self) -> Result<&'a GraphIndex> {
        self.view
            .index()
            .map(|a| a.as_ref())
            .ok_or_else(|| RelGoError::execution("graph index required but not built"))
    }

    fn guard(&self, rows: usize) -> Result<()> {
        if rows > self.row_limit {
            return Err(RelGoError::ResourceExhausted(format!(
                "intermediate graph relation of {rows} rows exceeds the {} row budget",
                self.row_limit
            )));
        }
        Ok(())
    }
}

/// Execute a graph plan into a chunk of bindings.
pub fn execute_graph(op: &GraphOp, ctx: &GraphExecContext<'_>) -> Result<GraphChunk> {
    let nv = ctx.pattern.vertex_count();
    let ne = ctx.pattern.edge_count();
    match op {
        GraphOp::ScanVertex { v, predicate, .. } => {
            let label = ctx.pattern.vertex(*v).label;
            let table = ctx.view.vertex_table(label);
            let rows: Vec<RowId> = match predicate {
                Some(p) => p.filter(table)?,
                None => (0..table.num_rows() as RowId).collect(),
            };
            ctx.guard(rows.len())?;
            Ok(GraphChunk::from_vertex(nv, ne, *v, rows))
        }
        GraphOp::ScanEdge { e, predicate, .. } => scan_edge(*e, predicate.as_ref(), ctx),
        GraphOp::Expand {
            input,
            from,
            edge,
            to,
            dir,
            emit_edge,
            edge_predicate,
            vertex_predicate,
            ..
        } => {
            let inp = execute_graph(input, ctx)?;
            expand(
                &inp,
                *from,
                *edge,
                *to,
                *dir,
                *emit_edge,
                edge_predicate.as_ref(),
                vertex_predicate.as_ref(),
                ctx,
            )
        }
        GraphOp::ExpandIntersect {
            input,
            legs,
            to,
            emit_edges,
            vertex_predicate,
            ..
        } => {
            let inp = execute_graph(input, ctx)?;
            expand_intersect(&inp, legs, *to, *emit_edges, vertex_predicate.as_ref(), ctx)
        }
        GraphOp::JoinSub {
            left,
            right,
            on_vertices,
            on_edges,
            ..
        } => {
            let l = execute_graph(left, ctx)?;
            let r = execute_graph(right, ctx)?;
            join_chunks(&l, &r, on_vertices, on_edges, ctx)
        }
        GraphOp::FilterVertex {
            input,
            v,
            predicate,
            ..
        } => {
            let inp = execute_graph(input, ctx)?;
            let label = ctx.pattern.vertex(*v).label;
            let table = ctx.view.vertex_table(label);
            let col = inp.vertex_col(*v)?;
            let mut keep = Vec::new();
            for (i, &rid) in col.iter().enumerate() {
                if predicate.matches(table, rid)? {
                    keep.push(i);
                }
            }
            Ok(inp.take(&keep))
        }
    }
}

/// `SCAN_EDGE`: bind the edge and both endpoints.
fn scan_edge(
    e: usize,
    predicate: Option<&ScalarExpr>,
    ctx: &GraphExecContext<'_>,
) -> Result<GraphChunk> {
    let pe = ctx.pattern.edge(e);
    let table = ctx.view.edge_table(pe.label);
    let rows: Vec<RowId> = match predicate {
        Some(p) => p.filter(table)?,
        None => (0..table.num_rows() as RowId).collect(),
    };
    ctx.guard(rows.len())?;
    let mut srcs = Vec::with_capacity(rows.len());
    let mut dsts = Vec::with_capacity(rows.len());
    if ctx.use_index {
        let idx = ctx.index()?;
        for &r in &rows {
            srcs.push(idx.edge_src(pe.label, r));
            dsts.push(idx.edge_dst(pe.label, r));
        }
    } else {
        for &r in &rows {
            srcs.push(ctx.view.resolve_src(pe.label, r)?);
            dsts.push(ctx.view.resolve_dst(pe.label, r)?);
        }
    }
    // Src column seeds the chunk; dst and the edge binding extend it.
    let base = GraphChunk::from_vertex(
        ctx.pattern.vertex_count(),
        ctx.pattern.edge_count(),
        pe.src,
        srcs,
    );
    let gather: Vec<usize> = (0..rows.len()).collect();
    base.extend(&gather, Some((pe.dst, dsts)), vec![(e, rows)])
}

/// Adjacency provider for one `(edge label, direction)`: the VE-index, or a
/// transient hash multimap over the edge relation (the hash-join fallback).
enum Adjacency<'a> {
    Indexed {
        index: &'a GraphIndex,
        label: relgo_common::LabelId,
        dir: Direction,
    },
    Hashed {
        /// from-vertex row → (edge row, neighbor row) pairs.
        map: FxHashMap<RowId, Vec<(RowId, RowId)>>,
    },
}

impl<'a> Adjacency<'a> {
    fn build(edge: usize, dir: Direction, ctx: &'a GraphExecContext<'_>) -> Result<Adjacency<'a>> {
        let pe = ctx.pattern.edge(edge);
        if ctx.use_index {
            return Ok(Adjacency::Indexed {
                index: ctx.index()?,
                label: pe.label,
                dir,
            });
        }
        // Hash fallback: resolve both endpoints of every edge row through
        // the λ key indexes and group by the from-side vertex row.
        let table = ctx.view.edge_table(pe.label);
        let mut map: FxHashMap<RowId, Vec<(RowId, RowId)>> = FxHashMap::default();
        for r in 0..table.num_rows() as RowId {
            let s = ctx.view.resolve_src(pe.label, r)?;
            let t = ctx.view.resolve_dst(pe.label, r)?;
            let (from, to) = match dir {
                Direction::Out => (s, t),
                Direction::In => (t, s),
            };
            map.entry(from).or_default().push((r, to));
        }
        // Sort each bucket by neighbor so intersection logic can merge.
        for v in map.values_mut() {
            v.sort_unstable_by_key(|&(_, n)| n);
        }
        Ok(Adjacency::Hashed { map })
    }

    /// `(edges, neighbors)` adjacent to `v`, sorted by neighbor.
    fn neighbors(&self, v: RowId) -> (Vec<RowId>, Vec<RowId>) {
        match self {
            Adjacency::Indexed { index, label, dir } => {
                let (es, ns) = index.neighbors(*label, *dir, v);
                (es.to_vec(), ns.to_vec())
            }
            Adjacency::Hashed { map } => match map.get(&v) {
                Some(pairs) => (
                    pairs.iter().map(|&(e, _)| e).collect(),
                    pairs.iter().map(|&(_, n)| n).collect(),
                ),
                None => (Vec::new(), Vec::new()),
            },
        }
    }
}

/// `EXPAND` (fused or edge-materializing).
#[allow(clippy::too_many_arguments)]
fn expand(
    input: &GraphChunk,
    from: usize,
    edge: usize,
    to: usize,
    dir: Direction,
    emit_edge: bool,
    edge_predicate: Option<&ScalarExpr>,
    vertex_predicate: Option<&ScalarExpr>,
    ctx: &GraphExecContext<'_>,
) -> Result<GraphChunk> {
    let pe = ctx.pattern.edge(edge);
    let adj = Adjacency::build(edge, dir, ctx)?;
    let etable = ctx.view.edge_table(pe.label);
    let vtable = ctx.view.vertex_table(ctx.pattern.vertex(to).label);

    let from_col = input.vertex_col(from)?;
    let mut gather = Vec::new();
    let mut to_col = Vec::new();
    let mut edge_col = Vec::new();
    for (i, &v) in from_col.iter().enumerate() {
        let (es, ns) = adj.neighbors(v);
        for (&erow, &nrow) in es.iter().zip(ns.iter()) {
            if let Some(p) = edge_predicate {
                if !p.matches(etable, erow)? {
                    continue;
                }
            }
            if let Some(p) = vertex_predicate {
                if !p.matches(vtable, nrow)? {
                    continue;
                }
            }
            gather.push(i);
            to_col.push(nrow);
            if emit_edge {
                edge_col.push(erow);
            }
        }
        ctx.guard(gather.len())?;
    }
    let new_edges = if emit_edge {
        vec![(edge, edge_col)]
    } else {
        Vec::new()
    };
    input.extend(&gather, Some((to, to_col)), new_edges)
}

/// `EXPAND_INTERSECT`: per input row, intersect the (sorted) adjacency
/// lists of every leg; parallel data edges multiply matches, preserving
/// homomorphism bag semantics.
fn expand_intersect(
    input: &GraphChunk,
    legs: &[StarLeg],
    to: usize,
    emit_edges: bool,
    vertex_predicate: Option<&ScalarExpr>,
    ctx: &GraphExecContext<'_>,
) -> Result<GraphChunk> {
    if legs.len() < 2 {
        return Err(RelGoError::execution(
            "EXPAND_INTERSECT requires at least two legs",
        ));
    }
    let adjs: Vec<Adjacency<'_>> = legs
        .iter()
        .map(|l| Adjacency::build(l.edge, l.dir, ctx))
        .collect::<Result<_>>()?;
    let etables: Vec<_> = legs
        .iter()
        .map(|l| ctx.view.edge_table(ctx.pattern.edge(l.edge).label))
        .collect();
    let epreds: Vec<Option<&ScalarExpr>> = legs
        .iter()
        .map(|l| ctx.pattern.edge(l.edge).predicate.as_ref())
        .collect();
    let vtable = ctx.view.vertex_table(ctx.pattern.vertex(to).label);

    let mut gather = Vec::new();
    let mut to_col: Vec<RowId> = Vec::new();
    let mut edge_cols: Vec<Vec<RowId>> = vec![Vec::new(); legs.len()];

    // Reusable per-row buffers (performance-guide workhorse pattern).
    let mut lists: Vec<(Vec<RowId>, Vec<RowId>)> = Vec::with_capacity(legs.len());
    for (row, _) in (0..input.len()).map(|r| (r, ())) {
        lists.clear();
        for (leg, adj) in legs.iter().zip(&adjs) {
            let v = input.vertex_at(leg.from, row)?;
            lists.push(adj.neighbors(v));
        }
        // Intersect candidate neighbor sets, shortest first.
        let mut order: Vec<usize> = (0..legs.len()).collect();
        order.sort_by_key(|&i| lists[i].1.len());
        let (first, rest) = order.split_first().expect("≥2 legs");
        'candidate: for (pos, &w) in lists[*first].1.iter().enumerate() {
            // Skip duplicate runs in the first list; multiplicity is
            // handled by enumerating edge combinations below.
            if pos > 0 && lists[*first].1[pos - 1] == w {
                continue;
            }
            for &i in rest {
                if lists[i].1.binary_search(&w).is_err() {
                    continue 'candidate;
                }
            }
            if let Some(p) = vertex_predicate {
                if !p.matches(vtable, w)? {
                    continue;
                }
            }
            // Edge candidates per leg pointing at w (predicate-filtered).
            let mut per_leg: Vec<Vec<RowId>> = Vec::with_capacity(legs.len());
            for (i, (es, ns)) in lists.iter().enumerate() {
                let lo = ns.partition_point(|&x| x < w);
                let hi = ns.partition_point(|&x| x <= w);
                let mut cands = Vec::with_capacity(hi - lo);
                for &erow in &es[lo..hi] {
                    if let Some(p) = epreds[i] {
                        if !p.matches(etables[i], erow)? {
                            continue;
                        }
                    }
                    cands.push(erow);
                }
                if cands.is_empty() {
                    continue 'candidate;
                }
                per_leg.push(cands);
            }
            // Cartesian product over per-leg edge candidates (usually 1×1).
            let mut idx = vec![0usize; per_leg.len()];
            loop {
                gather.push(row);
                to_col.push(w);
                if emit_edges {
                    for (i, &j) in idx.iter().enumerate() {
                        edge_cols[i].push(per_leg[i][j]);
                    }
                }
                // Advance the mixed-radix counter.
                let mut k = 0;
                loop {
                    if k == idx.len() {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < per_leg[k].len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == idx.len() {
                    break;
                }
            }
        }
        ctx.guard(gather.len())?;
    }
    let new_edges = if emit_edges {
        legs.iter()
            .map(|l| l.edge)
            .zip(edge_cols)
            .collect::<Vec<_>>()
    } else {
        Vec::new()
    };
    input.extend(&gather, Some((to, to_col)), new_edges)
}

/// Hash join of two chunks on common element bindings.
fn join_chunks(
    left: &GraphChunk,
    right: &GraphChunk,
    on_vertices: &[usize],
    on_edges: &[usize],
    ctx: &GraphExecContext<'_>,
) -> Result<GraphChunk> {
    // Build on the smaller side.
    let (build, probe, swapped) = if left.len() <= right.len() {
        (left, right, false)
    } else {
        (right, left, true)
    };
    let key_of = |chunk: &GraphChunk, row: usize| -> Result<Vec<RowId>> {
        let mut k = Vec::with_capacity(on_vertices.len() + on_edges.len());
        for &v in on_vertices {
            k.push(chunk.vertex_at(v, row)?);
        }
        for &e in on_edges {
            k.push(chunk.edge_at(e, row)?);
        }
        Ok(k)
    };
    let mut table: FxHashMap<Vec<RowId>, Vec<usize>> = FxHashMap::default();
    for row in 0..build.len() {
        table.entry(key_of(build, row)?).or_default().push(row);
    }
    let mut out = GraphChunk::join_layout(left, right);
    for prow in 0..probe.len() {
        if let Some(rows) = table.get(&key_of(probe, prow)?) {
            for &brow in rows {
                let (li, ri) = if swapped { (prow, brow) } else { (brow, prow) };
                out.push_joined(left, li, right, ri)?;
                // Guard inside the loop: joins are where blow-ups happen.
            }
            ctx.guard(out.len())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::{DataType, LabelId, Value};
    use relgo_core::graph_plan::PlanAnnotation;
    use relgo_graph::RGMapping;
    use relgo_pattern::PatternBuilder;
    use relgo_storage::table::table_of;
    use relgo_storage::Database;

    fn fig2_view() -> GraphView {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
                ("date", DataType::Date),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into(), Value::Date(31)],
                vec![2.into(), 2.into(), 100.into(), Value::Date(28)],
                vec![3.into(), 2.into(), 200.into(), Value::Date(20)],
                vec![4.into(), 3.into(), 200.into(), Value::Date(21)],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        g
    }

    fn wedge_pattern() -> relgo_pattern::Pattern {
        // (p1)-[Likes]->(m)<-[Likes]-(p2)
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let p2 = b.vertex("p2", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, m, LabelId(0)).unwrap();
        b.edge(p2, m, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    fn ctx<'a>(
        view: &'a GraphView,
        pattern: &'a relgo_pattern::Pattern,
        idx: bool,
    ) -> GraphExecContext<'a> {
        GraphExecContext {
            view,
            pattern,
            use_index: idx,
            row_limit: 1_000_000,
        }
    }

    fn ann() -> PlanAnnotation {
        PlanAnnotation::default()
    }

    #[test]
    fn scan_and_expand_indexed_vs_hashed_agree() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::Expand {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            from: 0,
            edge: 0,
            to: 2,
            dir: Direction::Out,
            emit_edge: true,
            edge_predicate: None,
            vertex_predicate: None,
            ann: ann(),
        };
        let with = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        let without = execute_graph(&plan, &ctx(&view, &pat, false)).unwrap();
        assert_eq!(with.len(), 4);
        assert_eq!(without.len(), 4);
        let mut a: Vec<(RowId, RowId)> = (0..4)
            .map(|i| (with.vertex_at(0, i).unwrap(), with.edge_at(0, i).unwrap()))
            .collect();
        let mut b: Vec<(RowId, RowId)> = (0..4)
            .map(|i| {
                (
                    without.vertex_at(0, i).unwrap(),
                    without.edge_at(0, i).unwrap(),
                )
            })
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn scan_edge_binds_endpoints() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::ScanEdge {
            e: 0,
            predicate: None,
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.binds_vertex(0));
        assert!(out.binds_vertex(2));
        assert!(out.binds_edge(0));
        // Edge row 1 (l2): Bob (row 1) likes m1 (row 0).
        let row = (0..4).find(|&i| out.edge_at(0, i).unwrap() == 1).unwrap();
        assert_eq!(out.vertex_at(0, row).unwrap(), 1);
        assert_eq!(out.vertex_at(2, row).unwrap(), 0);
    }

    #[test]
    fn wedge_via_intersect_matches_count() {
        let view = fig2_view();
        let pat = wedge_pattern();
        // Bind p1 and p2 with a cross product (join on no keys), then
        // intersect their Likes adjacencies to find m.
        let cross = GraphOp::JoinSub {
            left: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            right: Box::new(GraphOp::ScanVertex {
                v: 1,
                predicate: None,
                ann: ann(),
            }),
            on_vertices: vec![],
            on_edges: vec![],
            ann: ann(),
        };
        let plan = GraphOp::ExpandIntersect {
            input: Box::new(cross),
            legs: vec![
                StarLeg {
                    from: 0,
                    edge: 0,
                    dir: Direction::Out,
                },
                StarLeg {
                    from: 1,
                    edge: 1,
                    dir: Direction::Out,
                },
            ],
            to: 2,
            emit_edges: true,
            vertex_predicate: None,
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        // Homomorphic wedges: 8 (m1: {T,B}², m2: {B,D}²).
        assert_eq!(out.len(), 8);
        // Fused EI preserves multiplicity.
        let fused = match plan {
            GraphOp::ExpandIntersect {
                input, legs, to, ..
            } => GraphOp::ExpandIntersect {
                input,
                legs,
                to,
                emit_edges: false,
                vertex_predicate: None,
                ann: ann(),
            },
            _ => unreachable!(),
        };
        let out2 = execute_graph(&fused, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out2.len(), 8);
        assert!(!out2.binds_edge(0));
    }

    #[test]
    fn join_on_shared_vertex() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let left = GraphOp::ScanEdge {
            e: 0,
            predicate: None,
            ann: ann(),
        };
        let right = GraphOp::ScanEdge {
            e: 1,
            predicate: None,
            ann: ann(),
        };
        let plan = GraphOp::JoinSub {
            left: Box::new(left),
            right: Box::new(right),
            on_vertices: vec![2],
            on_edges: vec![],
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out.len(), 8, "wedges again, via join");
    }

    #[test]
    fn filter_vertex_prunes_bindings() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::FilterVertex {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            v: 0,
            predicate: ScalarExpr::col_eq(1, "Bob"),
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.vertex_at(0, 0).unwrap(), 1);
    }

    #[test]
    fn row_limit_aborts_expansion() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::Expand {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            from: 0,
            edge: 0,
            to: 2,
            dir: Direction::Out,
            emit_edge: false,
            edge_predicate: None,
            vertex_predicate: None,
            ann: ann(),
        };
        let mut c = ctx(&view, &pat, true);
        c.row_limit = 2;
        match execute_graph(&plan, &c) {
            Err(RelGoError::ResourceExhausted(_)) => {}
            other => panic!("expected resource exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn edge_predicate_applied_during_expand() {
        let view = fig2_view();
        let pat = wedge_pattern();
        let plan = GraphOp::Expand {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: ann(),
            }),
            from: 0,
            edge: 0,
            to: 2,
            dir: Direction::Out,
            emit_edge: false,
            edge_predicate: Some(ScalarExpr::col_cmp(
                3,
                relgo_storage::BinaryOp::Ge,
                Value::Date(28),
            )),
            vertex_predicate: None,
            ann: ann(),
        };
        let out = execute_graph(&plan, &ctx(&view, &pat, true)).unwrap();
        assert_eq!(out.len(), 2, "likes with date ≥ 28: l1, l2");
    }
}
