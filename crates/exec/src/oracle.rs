//! The correctness oracle: naive backtracking pattern matching plus
//! straight-line relational evaluation of the SPJM query, bypassing every
//! optimizer. All modes are required to produce row-identical results.

use crate::chunk::GraphChunk;
use crate::rel_exec::{apply_semantics, project_graph_table};
use relgo_common::{RelGoError, Result, RowId};
use relgo_core::spjm::SpjmQuery;
use relgo_graph::{Direction, GraphView};
use relgo_pattern::Pattern;
use relgo_storage::ops;
use relgo_storage::{Database, Table};

/// Enumerate all homomorphisms of `pattern` in `view` by naive
/// backtracking. Returns (vertex bindings, edge bindings) per match.
pub fn match_pattern(view: &GraphView, pattern: &Pattern) -> Result<Vec<(Vec<RowId>, Vec<RowId>)>> {
    let index = view
        .index()
        .ok_or_else(|| RelGoError::execution("oracle requires the graph index"))?;
    let n = pattern.vertex_count();
    let m = pattern.edge_count();
    let order = traversal_order(pattern);
    let mut out = Vec::new();
    let mut vbind = vec![u32::MAX; n];
    let mut ebind = vec![u32::MAX; m];

    // Recursive vertex binder; for each newly bound vertex, bind all
    // pattern edges towards already-bound vertices (enumerating parallel
    // data edges).
    fn bind_vertex(
        view: &GraphView,
        index: &relgo_graph::GraphIndex,
        pattern: &Pattern,
        order: &[usize],
        depth: usize,
        vbind: &mut Vec<u32>,
        ebind: &mut Vec<u32>,
        out: &mut Vec<(Vec<RowId>, Vec<RowId>)>,
    ) -> Result<()> {
        if depth == order.len() {
            out.push((vbind.clone(), ebind.clone()));
            return Ok(());
        }
        let v = order[depth];
        let vlabel = pattern.vertex(v).label;
        let vtable = view.vertex_table(vlabel);
        // Candidate rows: through the first constraint edge if one exists,
        // otherwise the full relation.
        let constraints: Vec<usize> = pattern
            .incident_edges(v)
            .into_iter()
            .filter(|&e| {
                let other = pattern.other_endpoint(e, v);
                vbind[other] != u32::MAX && ebind[e] == u32::MAX
            })
            .collect();
        let candidates: Vec<RowId> = if let Some(&e0) = constraints.first() {
            let pe = pattern.edge(e0);
            let other = pattern.other_endpoint(e0, v);
            let dir = if pe.src == other {
                Direction::Out
            } else {
                Direction::In
            };
            let (_, ns) = index.neighbors(pe.label, dir, vbind[other]);
            let mut cs = ns.to_vec();
            cs.dedup();
            cs
        } else {
            (0..vtable.num_rows() as RowId).collect()
        };
        for w in candidates {
            if let Some(p) = &pattern.vertex(v).predicate {
                if !p.matches(vtable, w)? {
                    continue;
                }
            }
            vbind[v] = w;
            bind_edges(
                view,
                index,
                pattern,
                order,
                depth,
                &constraints,
                0,
                vbind,
                ebind,
                out,
            )?;
            vbind[v] = u32::MAX;
        }
        Ok(())
    }

    /// Bind the constraint edges one at a time (cartesian over parallel
    /// data edges), then recurse to the next vertex.
    #[allow(clippy::too_many_arguments)]
    fn bind_edges(
        view: &GraphView,
        index: &relgo_graph::GraphIndex,
        pattern: &Pattern,
        order: &[usize],
        depth: usize,
        constraints: &[usize],
        ci: usize,
        vbind: &mut Vec<u32>,
        ebind: &mut Vec<u32>,
        out: &mut Vec<(Vec<RowId>, Vec<RowId>)>,
    ) -> Result<()> {
        if ci == constraints.len() {
            return bind_vertex(view, index, pattern, order, depth + 1, vbind, ebind, out);
        }
        let e = constraints[ci];
        let pe = pattern.edge(e);
        let (srow, trow) = (vbind[pe.src], vbind[pe.dst]);
        debug_assert!(srow != u32::MAX && trow != u32::MAX);
        let (es, ns) = index.neighbors(pe.label, Direction::Out, srow);
        let etable = view.edge_table(pe.label);
        let lo = ns.partition_point(|&x| x < trow);
        let hi = ns.partition_point(|&x| x <= trow);
        for &erow in &es[lo..hi] {
            if let Some(p) = &pe.predicate {
                if !p.matches(etable, erow)? {
                    continue;
                }
            }
            ebind[e] = erow;
            bind_edges(
                view,
                index,
                pattern,
                order,
                depth,
                constraints,
                ci + 1,
                vbind,
                ebind,
                out,
            )?;
            ebind[e] = u32::MAX;
        }
        Ok(())
    }

    bind_vertex(
        view, index, pattern, &order, 0, &mut vbind, &mut ebind, &mut out,
    )?;
    Ok(out)
}

/// A connectivity-preserving traversal order (mirrors the counting module).
fn traversal_order(pattern: &Pattern) -> Vec<usize> {
    let n = pattern.vertex_count();
    let start = (0..n)
        .find(|&v| pattern.vertex(v).predicate.is_some())
        .unwrap_or(0);
    let mut order = vec![start];
    let mut seen = vec![false; n];
    seen[start] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&v| !seen[v])
            .find(|&v| pattern.neighbors(v).iter().any(|&u| seen[u]))
            .expect("pattern is connected");
        seen[next] = true;
        order.push(next);
    }
    order
}

/// Execute the full SPJM query the slow, obviously-correct way.
pub fn execute_query(query: &SpjmQuery, view: &GraphView, db: &Database) -> Result<Table> {
    // 1. Enumerate matches and build the graph relation chunk.
    let matches = match_pattern(view, &query.pattern)?;
    let n = query.pattern.vertex_count();
    let m = query.pattern.edge_count();
    let mut chunk = GraphChunk::from_vertex(
        n.max(1),
        m,
        0,
        matches.iter().map(|(vb, _)| vb[0]).collect(),
    );
    // Attach the remaining vertex and edge binding columns.
    for v in 1..n {
        let col: Vec<RowId> = matches.iter().map(|(vb, _)| vb[v]).collect();
        let gather: Vec<usize> = (0..matches.len()).collect();
        chunk = chunk.extend(&gather, Some((v, col)), vec![])?;
    }
    for e in 0..m {
        let col: Vec<RowId> = matches.iter().map(|(_, eb)| eb[e]).collect();
        let gather: Vec<usize> = (0..matches.len()).collect();
        chunk = chunk.extend(&gather, None, vec![(e, col)])?;
    }
    let chunk = apply_semantics(&chunk, &query.pattern, view)?;

    // 2. π̂ through the COLUMNS clause.
    let mut table = project_graph_table(&chunk, &query.pattern, view, &query.columns)?;

    // 3. Joins with the declared tables, in declaration order.
    let gw = query.graph_width();
    let mut acc = gw;
    for tname in &query.tables {
        let t = db.table(tname)?;
        let w = t.schema().len();
        let keys: Vec<(usize, usize)> = query
            .join_on
            .iter()
            .filter(|&&(_, r)| r >= acc && r < acc + w)
            .map(|&(l, r)| (l, r - acc))
            .collect();
        table = ops::hash_join(&table, t, &keys)?;
        acc += w;
    }

    // 4. σ, π, aggregation, DISTINCT.
    if let Some(sel) = &query.selection {
        table = ops::filter(&table, sel)?;
    }
    if !query.projection.is_empty() {
        table = ops::project(&table, &query.projection)?;
    }
    if !query.aggregates.is_empty() {
        let spec: Vec<(ops::AggFunc, usize)> = query
            .aggregates
            .iter()
            .map(|a| (a.func, a.column))
            .collect();
        table = ops::aggregate(&table, &spec)?;
    }
    if query.distinct {
        table = ops::distinct(&table);
    }
    if !query.order_by.is_empty() {
        table = ops::sort(&table, &query.order_by)?;
    }
    if let Some(n) = query.limit {
        table = ops::limit(&table, n);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::{DataType, LabelId};
    use relgo_core::spjm::SpjmBuilder;
    use relgo_graph::RGMapping;
    use relgo_pattern::PatternBuilder;
    use relgo_storage::table::table_of;
    use relgo_storage::ScalarExpr;

    fn fig2() -> (GraphView, Database) {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[
                ("person_id", DataType::Int),
                ("name", DataType::Str),
                ("place_id", DataType::Int),
            ],
            vec![
                vec![1.into(), "Tom".into(), 10.into()],
                vec![2.into(), "Bob".into(), 20.into()],
                vec![3.into(), "David".into(), 30.into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into()],
                vec![2.into(), 2.into(), 100.into()],
                vec![3.into(), 2.into(), 200.into()],
                vec![4.into(), 3.into(), 200.into()],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.add_table(table_of(
            "Place",
            &[("id", DataType::Int), ("pname", DataType::Str)],
            vec![
                vec![10.into(), "Germany".into()],
                vec![20.into(), "Denmark".into()],
                vec![30.into(), "China".into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        db.set_primary_key("Place", "id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        (g, db)
    }

    fn triangle() -> Pattern {
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let p2 = b.vertex("p2", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, m, LabelId(0)).unwrap();
        b.edge(p2, m, LabelId(0)).unwrap();
        b.edge(p1, p2, LabelId(1)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn oracle_counts_fig2_triangle() {
        let (view, _) = fig2();
        let matches = match_pattern(&view, &triangle()).unwrap();
        assert_eq!(matches.len(), 4, "the four matches of the paper's Fig 2(b)");
        // Every match binds all vertices and edges.
        for (vb, eb) in &matches {
            assert!(vb.iter().all(|&x| x != u32::MAX));
            assert!(eb.iter().all(|&x| x != u32::MAX));
        }
    }

    #[test]
    fn oracle_executes_fig1_query() {
        let (view, db) = fig2();
        // Fig 1: friends of Tom sharing a liked message, joined with Place.
        let mut b = SpjmBuilder::new(triangle());
        let p1_name = b.vertex_column(0, 1, "p1_name");
        let p1_place = b.vertex_column(0, 2, "p1_place_id");
        let p2_name = b.vertex_column(1, 1, "p2_name");
        b.table("Place");
        b.join(p1_place, 3);
        b.select(ScalarExpr::col_eq(p1_name, "Tom"));
        b.project(&[p2_name, 4]);
        let q = b.build();
        let out = execute_query(&q, &view, &db).unwrap();
        // Tom knows Bob; both like m1 → one row: (Bob, Germany).
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), relgo_common::Value::str("Bob"));
        assert_eq!(out.value(0, 1), relgo_common::Value::str("Germany"));
    }

    #[test]
    fn oracle_single_vertex_pattern() {
        let (view, db) = fig2();
        let mut pb = PatternBuilder::new();
        pb.vertex("p", LabelId(0));
        let mut b = SpjmBuilder::new(pb.build().unwrap());
        b.vertex_column(0, 1, "name");
        let q = b.build();
        let out = execute_query(&q, &view, &db).unwrap();
        assert_eq!(out.num_rows(), 3);
    }
}
