//! Operator-level execution profiling.
//!
//! A [`ProfileSink`] collects one [`OperatorProfile`] per physical operator
//! as a plan executes. Operator ids are assigned by reserving the next slot
//! at operator entry, *before* recursing into inputs — the same pre-order
//! the plan-time [`OperatorMeta`] collection and the EXPLAIN renderers use,
//! so profiles, metas and rendered lines line up by index. The sink is only
//! touched by the single plan-driving thread (morsel workers never see it),
//! and morsel-parallel operators report their merged, morsel-ordered output
//! — profiled results are bit-identical to unprofiled ones.
//!
//! Profiling is gated by [`ProfileMode`]: the executors carry an
//! `Option<&ProfileSink>` and the hot path pays exactly one branch per
//! operator when it is off.
//!
//! [`OperatorMeta`]: relgo_core::OperatorMeta

use relgo_common::{RelGoError, Result};
use relgo_core::OperatorMeta;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// Whether an execution collects per-operator profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// No collection; the hot path pays one branch per operator.
    #[default]
    Off,
    /// Collect one [`OperatorProfile`] per operator.
    On,
}

/// What one physical operator actually did during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorProfile {
    /// Pre-order operator id (matches [`OperatorMeta::op_id`]).
    pub op_id: usize,
    /// Operator kind (`"expand"`, `"hash_join"`, …).
    pub kind: &'static str,
    /// Rows entering the operator (summed over inputs; 0 for leaves).
    pub rows_in: u64,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Morsels the operator's scheduler invocation dispatched (0 for
    /// serial-only operators).
    pub morsels: u64,
    /// The operator's own wall time, excluding its inputs' execution.
    pub elapsed: Duration,
    /// Rows charged against the shared row budget before materialization
    /// (the morsel-parallel operators charge exact projected sizes; serial
    /// operators guard after the fact and charge nothing).
    pub budget_charged: u64,
}

/// Per-operator profiles of one plan execution, in op-id (pre-order) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProfile {
    /// One entry per operator; index `i` is op-id `i`.
    pub ops: Vec<OperatorProfile>,
}

/// The collection target threaded through the executors. Interior-mutable
/// so it rides behind `&` references alongside the execution context; the
/// mutex is uncontended (one touch per operator from one thread).
#[derive(Debug, Default)]
pub struct ProfileSink {
    ops: Mutex<Vec<OperatorProfile>>,
}

impl ProfileSink {
    /// An empty sink.
    pub fn new() -> ProfileSink {
        ProfileSink::default()
    }

    /// Reserve the next pre-order op id for an operator of `kind`. Call at
    /// operator entry, before executing any input.
    pub fn begin(&self, kind: &'static str) -> usize {
        let mut ops = self.ops.lock().unwrap();
        let op_id = ops.len();
        ops.push(OperatorProfile {
            op_id,
            kind,
            rows_in: 0,
            rows_out: 0,
            morsels: 0,
            elapsed: Duration::ZERO,
            budget_charged: 0,
        });
        op_id
    }

    /// Fill in the measurements of a reserved operator slot.
    pub fn finish(
        &self,
        op_id: usize,
        rows_in: u64,
        rows_out: u64,
        morsels: u64,
        elapsed: Duration,
        budget_charged: u64,
    ) {
        let mut ops = self.ops.lock().unwrap();
        let slot = &mut ops[op_id];
        slot.rows_in = rows_in;
        slot.rows_out = rows_out;
        slot.morsels = morsels;
        slot.elapsed = elapsed;
        slot.budget_charged = budget_charged;
    }

    /// Drain the collected profiles (op-id order).
    pub fn take(&self) -> PlanProfile {
        PlanProfile {
            ops: std::mem::take(&mut *self.ops.lock().unwrap()),
        }
    }
}

/// One operator's plan-time meta joined with its run-time profile.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorReport {
    /// The optimizer's view (id, kind, estimates, child links).
    pub meta: OperatorMeta,
    /// What execution measured.
    pub prof: OperatorProfile,
}

impl OperatorReport {
    /// Per-operator Q-error `max(est/act, act/est)`, the paper's estimate-
    /// quality measure. `None` when either side is zero (the ratio is
    /// undefined; an empty operator estimated as empty is not an error).
    pub fn qerror(&self) -> Option<f64> {
        let est = self.meta.est_rows;
        let act = self.prof.rows_out as f64;
        if est <= 0.0 || act <= 0.0 {
            return None;
        }
        Some((est / act).max(act / est))
    }
}

/// The full estimate-vs-actual report of one profiled execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanReport {
    /// One entry per operator, in op-id (pre-order) order.
    pub ops: Vec<OperatorReport>,
}

impl PlanReport {
    /// Join plan-time metas with run-time profiles. Errors if the two
    /// traversals disagree (a bug: they share pre-order by construction).
    pub fn join(metas: Vec<OperatorMeta>, profile: PlanProfile) -> Result<PlanReport> {
        if metas.len() != profile.ops.len() {
            return Err(RelGoError::execution(format!(
                "plan metas ({}) and operator profiles ({}) disagree",
                metas.len(),
                profile.ops.len()
            )));
        }
        let ops = metas
            .into_iter()
            .zip(profile.ops)
            .map(|(meta, prof)| {
                if meta.op_id != prof.op_id || meta.kind != prof.kind {
                    return Err(RelGoError::execution(format!(
                        "operator {} planned as {} but profiled as {} (id {})",
                        meta.op_id, meta.kind, prof.kind, prof.op_id
                    )));
                }
                Ok(OperatorReport { meta, prof })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(PlanReport { ops })
    }

    /// The root operator's report (op-id 0).
    pub fn root(&self) -> Option<&OperatorReport> {
        self.ops.first()
    }

    /// The worst per-operator Q-error of the plan (`None` when no operator
    /// has a defined one).
    pub fn max_qerror(&self) -> Option<f64> {
        self.ops
            .iter()
            .filter_map(OperatorReport::qerror)
            .fold(None, |acc, q| Some(acc.map_or(q, |a: f64| a.max(q))))
    }

    /// Check the internal row accounting: every operator's `rows_in` must
    /// equal the summed `rows_out` of its inputs — i.e. each operator's
    /// actual rows reconcile with the result cardinality it feeds. The
    /// `figprofile` figure errors on any violation.
    pub fn reconcile(&self) -> Result<()> {
        for op in &self.ops {
            let fed: u64 = op
                .meta
                .inputs
                .iter()
                .map(|&i| self.ops[i].prof.rows_out)
                .sum();
            if !op.meta.inputs.is_empty() && fed != op.prof.rows_in {
                return Err(RelGoError::execution(format!(
                    "operator {} ({}) consumed {} rows but its inputs produced {}",
                    op.meta.op_id, op.meta.kind, op.prof.rows_in, fed
                )));
            }
        }
        Ok(())
    }

    /// Render the per-line EXPLAIN ANALYZE suffix for op `id`:
    /// `  [op=N est=E act=A q=Q]` (q omitted when undefined).
    pub fn annotation(&self, id: usize) -> String {
        let Some(op) = self.ops.get(id) else {
            return String::new();
        };
        let mut s = format!(
            "  [op={} est={:.0} act={}",
            op.meta.op_id, op.meta.est_rows, op.prof.rows_out
        );
        if let Some(q) = op.qerror() {
            let _ = write!(s, " q={q:.2}");
        }
        s.push(']');
        s
    }

    /// The report as one JSON array of operator objects (hand-rolled; kinds
    /// and numbers only, nothing needs escaping). The serving edge embeds
    /// this in `profile=1` responses and slow-query access-log lines.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"op\":{},\"kind\":\"{}\",\"est\":{:.1},\"rows_in\":{},\"rows_out\":{},\
                 \"morsels\":{},\"micros\":{},\"budget\":{}",
                op.meta.op_id,
                op.meta.kind,
                op.meta.est_rows,
                op.prof.rows_in,
                op.prof.rows_out,
                op.prof.morsels,
                op.prof.elapsed.as_micros(),
                op.prof.budget_charged,
            );
            if let Some(q) = op.qerror() {
                let _ = write!(s, ",\"q\":{q:.3}");
            }
            s.push('}');
        }
        s.push(']');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(op_id: usize, kind: &'static str, est: f64, inputs: Vec<usize>) -> OperatorMeta {
        OperatorMeta {
            op_id,
            kind,
            est_rows: est,
            est_cost: est,
            inputs,
        }
    }

    fn prof(op_id: usize, kind: &'static str, rows_in: u64, rows_out: u64) -> OperatorProfile {
        OperatorProfile {
            op_id,
            kind,
            rows_in,
            rows_out,
            morsels: 1,
            elapsed: Duration::from_micros(5),
            budget_charged: rows_out,
        }
    }

    #[test]
    fn sink_assigns_preorder_ids_and_drains_in_order() {
        let sink = ProfileSink::new();
        let a = sink.begin("filter");
        let b = sink.begin("scan_table");
        sink.finish(b, 0, 100, 0, Duration::from_micros(7), 0);
        sink.finish(a, 100, 40, 0, Duration::from_micros(3), 0);
        let p = sink.take();
        assert_eq!(p.ops.len(), 2);
        assert_eq!(
            (p.ops[0].op_id, p.ops[0].kind, p.ops[0].rows_out),
            (0, "filter", 40)
        );
        assert_eq!(p.ops[1].rows_out, 100);
        assert!(sink.take().ops.is_empty(), "take drains");
    }

    #[test]
    fn report_joins_qerror_and_reconciles() {
        let metas = vec![
            meta(0, "filter", 20.0, vec![1]),
            meta(1, "scan_table", 100.0, vec![]),
        ];
        let profile = PlanProfile {
            ops: vec![prof(0, "filter", 100, 40), prof(1, "scan_table", 0, 100)],
        };
        let report = PlanReport::join(metas, profile).unwrap();
        assert_eq!(report.ops[0].qerror(), Some(2.0));
        assert_eq!(report.ops[1].qerror(), Some(1.0));
        assert_eq!(report.max_qerror(), Some(2.0));
        report.reconcile().unwrap();
        let ann = report.annotation(0);
        assert!(ann.contains("est=20") && ann.contains("act=40") && ann.contains("q=2.00"));
        let json = report.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"kind\":\"filter\"") && json.contains("\"q\":2.000"));
    }

    #[test]
    fn reconcile_rejects_row_mismatch() {
        let metas = vec![
            meta(0, "filter", 20.0, vec![1]),
            meta(1, "scan_table", 100.0, vec![]),
        ];
        let profile = PlanProfile {
            ops: vec![prof(0, "filter", 99, 40), prof(1, "scan_table", 0, 100)],
        };
        let report = PlanReport::join(metas, profile).unwrap();
        assert!(report.reconcile().is_err());
    }

    #[test]
    fn join_rejects_disagreeing_traversals() {
        let metas = vec![meta(0, "filter", 20.0, vec![])];
        let profile = PlanProfile {
            ops: vec![prof(0, "project", 0, 1)],
        };
        assert!(PlanReport::join(metas, profile).is_err());
        assert!(PlanReport::join(
            vec![],
            PlanProfile {
                ops: vec![prof(0, "x", 0, 0)]
            }
        )
        .is_err());
    }

    #[test]
    fn zero_row_operators_have_no_qerror() {
        let metas = vec![meta(0, "scan_table", 0.0, vec![])];
        let profile = PlanProfile {
            ops: vec![prof(0, "scan_table", 0, 0)],
        };
        let report = PlanReport::join(metas, profile).unwrap();
        assert_eq!(report.ops[0].qerror(), None);
        assert_eq!(report.max_qerror(), None);
        assert!(!report.annotation(0).contains("q="));
    }
}
