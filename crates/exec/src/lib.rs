//! # relgo-exec
//!
//! The vectorized execution engine for RelGo-RS physical plans — the
//! stand-in for the paper's DuckDB runtime module (§4.3).
//!
//! * [`chunk::GraphChunk`] — the graph-relation runtime representation:
//!   one row-id column per bound pattern element (struct-of-arrays);
//! * [`graph_exec`] — interprets [`relgo_core::GraphOp`] trees: `SCAN`,
//!   `EXPAND` (VE-index traversal or hash fallback), `EXPAND_INTERSECT`
//!   (sorted-list merge intersection), binding hash joins, vertex filters;
//! * [`rel_exec`] — interprets [`relgo_core::RelOp`] trees around
//!   `SCAN_GRAPH_TABLE`: π̂ projection of bindings into columnar tables,
//!   table scans, hash joins, σ/π/aggregate/DISTINCT;
//! * [`oracle`] — a naive backtracking matcher + nested-loop relational
//!   evaluation, the correctness oracle every optimizer mode is tested
//!   against;
//! * a resource guard models the paper's OOM outcomes: plans whose
//!   intermediates exceed the configured row budget abort with
//!   [`relgo_common::RelGoError::ResourceExhausted`].

pub mod chunk;
pub mod graph_exec;
pub mod oracle;
pub mod profile;
pub mod rel_exec;

pub use chunk::GraphChunk;
pub use graph_exec::BatchState;
pub use profile::{
    OperatorProfile, OperatorReport, PlanProfile, PlanReport, ProfileMode, ProfileSink,
};
pub use rel_exec::{execute_plan, execute_plan_batch, execute_plan_with, ExecConfig};
