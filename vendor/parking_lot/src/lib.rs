//! Offline shim for `parking_lot`: `Mutex` and `RwLock` wrappers over
//! `std::sync` with parking_lot's non-poisoning API (guards returned
//! directly, no `Result`). A poisoned std lock — a panic while holding the
//! guard — recovers the inner value, matching parking_lot's behavior of
//! not propagating poison.

// Guard types are std's own, re-exported so callers can name them (the
// real parking_lot exposes same-named guard types).
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire without blocking: `None` if the lock is currently held
    /// (parking_lot returns `Option`, not std's `Result`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
