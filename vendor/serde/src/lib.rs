//! Offline shim for `serde`.
//!
//! Provides `Serialize`/`Deserialize` as blanket-implemented marker traits
//! and re-exports the no-op derive macros from the sibling `serde_derive`
//! shim, so `#[derive(Serialize, Deserialize)]` in the main crates compiles
//! without crates.io access. No serialization machinery exists here; see
//! `vendor/README.md` for the swap-in story.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
