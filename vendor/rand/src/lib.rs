//! Offline shim for the `rand` 0.8 API surface this repository uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_range, gen_bool}` over integer ranges, `f64`, and `bool`.
//!
//! The generator is SplitMix64 — deterministic and well-distributed, which
//! is all the synthetic data generators need — but the stream is *not*
//! bit-compatible with upstream `rand`'s `StdRng` (ChaCha12). Datasets are
//! reproducible per seed under this shim, not across shim/upstream swaps.

use core::ops::Range;

/// A seedable pseudo-random generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zeros fixed-point-ish start for tiny seeds.
        SplitMix64 {
            state: seed ^ 0x1656_6791_76f9_31f5,
        }
    }
}

/// Types producible by `Rng::gen`, mirroring the `Standard` distribution.
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a `Range`, mirroring `SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is < span / 2^64 — irrelevant for the small
                // spans the data generators use.
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + f64::sample_standard(rng) * (range.end - range.start)
    }
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit source.
    fn next_u64(&mut self) -> u64;

    /// Sample a `Standard`-distributed value (`f64` in [0,1), fair `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open, must be non-empty).
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The default seedable generator (SplitMix64 here; ChaCha12 upstream).
    pub type StdRng = super::SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
