//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The repository derives serde traits on its vocabulary types so that a
//! real `serde` can be dropped in when registry access exists, but nothing
//! in-tree serializes today. These derives therefore expand to nothing:
//! the marker traits in the sibling `serde` shim have blanket impls.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
