//! Offline shim for `criterion`'s harness API: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, and `black_box`.
//!
//! Instead of criterion's statistical sampling, each benchmark runs one
//! warm-up iteration plus a small fixed number of timed iterations
//! (override with `CRITERION_SHIM_ITERS`) and prints the per-iteration
//! mean. Good enough to keep `cargo bench` meaningful offline; swap in the
//! real crate for publishable numbers.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard opaque-value hint, criterion-style.
pub use std::hint::black_box;

fn timed_iters() -> u32 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// A `function / parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter-only id (`from_parameter` in real criterion).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self, group: &str) -> String {
        if self.function.is_empty() {
            format!("{group}/{}", self.parameter)
        } else {
            format!("{group}/{}/{}", self.function, self.parameter)
        }
    }
}

/// Accepted wherever criterion takes `impl Into<BenchmarkId>`-ish ids.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// Hands the measurement closure to the harness.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Run `routine` once to warm up, then `CRITERION_SHIM_ITERS` (default
    /// 3) timed iterations, recording the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let iters = timed_iters();
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count comes
    /// from `CRITERION_SHIM_ITERS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id(), f)
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input))
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher);
        println!(
            "{:<60} time: {:>12.0} ns/iter",
            id.render(&self.name),
            bencher.mean_ns
        );
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .run(BenchmarkId::from_parameter(""), f);
        self
    }
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (for `[[bench]] harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
