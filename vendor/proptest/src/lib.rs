//! Offline shim for `proptest`: enough of the strategy algebra and the
//! `proptest!` macro to run this repository's property tests without
//! crates.io access.
//!
//! Supported surface: integer-range strategies, tuple strategies (arity
//! ≤ 6), `Just`, `prop_map`, `prop_flat_map`, `collection::vec`,
//! `prop_oneof!`, `any::<bool>()` (plus the integer primitives),
//! `ProptestConfig::with_cases`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: failing inputs are **not shrunk** (the
//! panic message carries the case number and the generating seed instead),
//! and `prop_assert*` panic immediately rather than threading `Result`.

use rand::Rng;

/// The per-test RNG. Deterministic: each test derives its seed from the
/// test name so failures reproduce across runs.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration; only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Derive a stable 64-bit seed from a test's module path and name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a; stability across runs is all that matters here.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase, for heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniform choice among equally-weighted alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Values with a canonical "any" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Fair-coin strategy backing `any::<bool>()`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::Range<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, i8, i16, i32, i64, usize);

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A `Vec` strategy: random length from `size`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::SeedableRng;
}

/// The glob import every proptest test starts with.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Choose uniformly among the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// `assert!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// `assert_ne!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declare property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng: $crate::TestRng =
                <$crate::TestRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                let run = || {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                };
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {case}/{} failed (seed {seed:#x}); no shrinking in offline shim",
                        config.cases,
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        A,
        B,
    }

    fn composite() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
        (2usize..6).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec((0..n, 0..n), 1..10))
                .prop_map(|(n, edges)| (n, edges))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn composite_values_in_bounds(v in composite(), flag in any::<bool>()) {
            let (n, edges) = v;
            prop_assert!((2..6).contains(&n));
            prop_assert!((1..10).contains(&edges.len()));
            for (a, b) in edges {
                prop_assert!(a < n && b < n, "{a},{b} out of 0..{n}");
            }
            let _ = flag;
        }

        #[test]
        fn oneof_hits_every_arm(which in prop_oneof![Just(Shape::A), Just(Shape::B)]) {
            prop_assert!(which == Shape::A || which == Shape::B);
        }
    }

    #[test]
    fn generation_is_varied_and_deterministic() {
        let seed = crate::seed_for("vary");
        let mut rng: crate::TestRng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(seed);
        let strat = composite();
        let a: Vec<_> = (0..20).map(|_| strat.generate(&mut rng)).collect();
        let mut rng2: crate::TestRng = <crate::TestRng as rand::SeedableRng>::seed_from_u64(seed);
        let b: Vec<_> = (0..20).map(|_| strat.generate(&mut rng2)).collect();
        assert_eq!(a, b, "same seed must reproduce the same cases");
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "20 draws should not all be identical"
        );
    }
}
