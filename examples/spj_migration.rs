//! SPJ → SPJM migration (the paper's §7 future-work direction, implemented):
//! takes a plain relational SPJ query, detects the join sub-structure that
//! *is* a graph pattern under the RGMapping, folds it into a matching
//! operator, and shows the converged optimizer speeding it up. Under the
//! SNB mapping every table of this query is graph-mapped, so the whole
//! 8-table join folds into one 4-vertex pattern (joins through non-mapped
//! columns would stay relational, as `crates/core/src/convert.rs` tests).
//!
//! Run with: `cargo run --release --example spj_migration`

use relgo::core::convert::{evaluate_spj, spj_to_spjm, SpjJoin, SpjQuery, SpjTable};
use relgo::prelude::*;
use std::time::Instant;

fn main() -> Result<()> {
    let (session, _) = Session::snb(0.3, 42)?;

    // "Which persons known by the seed person liked the same message as
    // them, and where do they live?" — written as a plain 8-table SPJ
    // join. Pick the first seed person that actually has such friends.
    let seed = (0..40i64)
        .find(|&id| {
            let probe = spj_query(id);
            evaluate_spj(&probe, &session.db())
                .map(|t| t.num_rows() > 0)
                .unwrap_or(false)
        })
        .unwrap_or(5);
    let spj = spj_query(seed);
    println!("seed person id: {seed}");
    run(session, spj)
}

fn spj_query(seed: i64) -> SpjQuery {
    SpjQuery {
        tables: vec![
            SpjTable {
                table: "Person".into(),
                predicate: Some(ScalarExpr::col_eq(0, seed)),
            }, // p1
            SpjTable {
                table: "Likes".into(),
                predicate: None,
            }, // l1
            SpjTable {
                table: "Message".into(),
                predicate: None,
            }, // m
            SpjTable {
                table: "Likes".into(),
                predicate: None,
            }, // l2
            SpjTable {
                table: "Person".into(),
                predicate: None,
            }, // p2
            SpjTable {
                table: "Knows".into(),
                predicate: None,
            }, // k
            SpjTable {
                table: "PersonLocatedIn".into(),
                predicate: None,
            }, // loc
            SpjTable {
                table: "Place".into(),
                predicate: None,
            }, // pl
        ],
        joins: vec![
            SpjJoin {
                left: (1, 1),
                right: (0, 0),
            }, // l1.person = p1.id
            SpjJoin {
                left: (1, 2),
                right: (2, 0),
            }, // l1.message = m.id
            SpjJoin {
                left: (3, 2),
                right: (2, 0),
            }, // l2.message = m.id
            SpjJoin {
                left: (3, 1),
                right: (4, 0),
            }, // l2.person = p2.id
            SpjJoin {
                left: (5, 1),
                right: (0, 0),
            }, // k.p1 = p1.id
            SpjJoin {
                left: (5, 2),
                right: (4, 0),
            }, // k.p2 = p2.id
            SpjJoin {
                left: (6, 1),
                right: (4, 0),
            }, // loc.person = p2.id
            SpjJoin {
                left: (6, 2),
                right: (7, 0),
            }, // loc.place = pl.id
        ],
        projection: vec![(4, 1), (7, 1)], // p2.name, place.name
    }
}

fn run(session: Session, spj: SpjQuery) -> Result<()> {
    println!(
        "plain SPJ: {} tables, {} join conditions",
        spj.tables.len(),
        spj.joins.len()
    );
    let t0 = Instant::now();
    let plain = evaluate_spj(&spj, &session.db())?;
    let plain_time = t0.elapsed();

    let conv = spj_to_spjm(&spj, &session.view(), &session.db())?;
    println!("\nconversion summary:");
    for line in &conv.summary {
        println!("  {line}");
    }
    println!(
        "\nfolded pattern: {} vertices, {} edges; {} relational table(s) remain",
        conv.query.pattern.vertex_count(),
        conv.query.pattern.edge_count(),
        conv.query.tables.len()
    );

    let relgo = session.run(&conv.query, OptimizerMode::RelGo)?;
    assert_eq!(relgo.table.sorted_rows(), plain.sorted_rows());
    println!("\n== converged plan ==");
    println!("{}", session.explain(&conv.query, OptimizerMode::RelGo)?);
    println!("result rows: {}", relgo.table.num_rows());
    println!(
        "plain SPJ evaluation: {plain_time:?}  |  converted SPJM under RelGo: {:?}",
        relgo.e2e()
    );
    Ok(())
}
