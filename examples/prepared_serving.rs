//! Prepared-statement serving demo: the same templated SNB workload served
//! three ways — through the plan cache (`run_cached`), through prepared
//! handles (`execute`: rebind only), and through prepared batches
//! (`execute_batch`: shared operator state) — with per-regime timing and
//! the cache's prepared-statement metrics.
//!
//! `RELGO_THREADS=2` gives every query 2 morsel workers inside its graph
//! operators; the replay itself runs from several serving threads, and the
//! two levels compose.
//!
//! Run with: `cargo run --release --example prepared_serving [-- --quick]`

use relgo::prelude::*;
use relgo::workloads::templates::snb_templates;

fn main() -> Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sf, threads, rounds, batch) = if quick {
        (0.03, 2, 4, 2)
    } else {
        (0.1, 4, 24, 8)
    };

    println!("generating SNB-like data (sf={sf}) and building the session...");
    let options = SessionOptions::default();
    println!(
        "  serving threads: {threads}, intra-query morsel workers: {} (RELGO_THREADS)",
        options.threads
    );
    let (session, schema) = Session::snb_with(sf, 42, options)?;
    let templates = snb_templates(&schema);

    // One prepared handle per template: parameterize + optimize once.
    for t in &templates {
        let stmt = session.prepare(&t.instantiate(0)?, OptimizerMode::RelGo)?;
        println!(
            "  prepared {:<8} slots '{}' key fingerprint {:016x}",
            t.name(),
            stmt.slot_sig(),
            stmt.key().fingerprint()
        );
        // Sanity: a batched execute is bit-identical to per-query executes.
        let bindings: Vec<Vec<Value>> = (1..=3).map(|d| t.bindings(d)).collect::<Result<_>>()?;
        let batched = stmt.execute_batch(&bindings)?;
        for (b, table) in bindings.iter().zip(&batched.tables) {
            let single = stmt.execute(b)?.table;
            assert_eq!(single.num_rows(), table.num_rows());
            for r in 0..single.num_rows() as u32 {
                assert_eq!(single.row(r), table.row(r), "batch must be bit-identical");
            }
        }
    }

    // Replay the same traffic under each serving regime.
    println!(
        "replaying {threads} threads x {rounds} rounds x {} templates per regime...",
        templates.len()
    );
    for serve in [
        ServeMode::Cached,
        ServeMode::Prepared,
        ServeMode::PreparedBatched { batch },
    ] {
        let report = replay_concurrent_with(
            &session,
            &templates,
            OptimizerMode::RelGo,
            threads,
            rounds,
            serve,
        )?;
        let ms = |d: Option<std::time::Duration>| d.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
        println!(
            "  {:<10} {} queries in {:>7.1} ms ({:>6.0} q/s)  p50 {:>6.3} ms  p99 {:>6.3} ms  opt {:>7.3} ms  cached {}  batches {}",
            serve.name(),
            report.queries,
            report.elapsed.as_secs_f64() * 1e3,
            report.throughput(),
            ms(report.p50()),
            ms(report.p99()),
            report.opt_time.as_secs_f64() * 1e3,
            report.cached_queries,
            report.batches
        );
        // Per-replay cache-metric deltas (not the session-lifetime totals):
        // what this regime alone did to the cache.
        let m = report.metrics;
        println!(
            "             deltas: hits={} misses={} invalidations={} prepared_hits={} prepared_invalidations={}",
            m.hits, m.misses, m.invalidations, m.prepared_hits, m.prepared_invalidations
        );
        assert_eq!(report.queries, threads * rounds * templates.len());
        assert_eq!(report.cached_queries, report.queries, "replay is warm");
        assert_eq!(m.invalidations, 0, "no statistics rebuilds mid-replay");
    }

    // One unified snapshot covers the cache counters, the query-latency
    // histograms, and everything else the session registers.
    let obs = session.observability_snapshot();
    let m = obs.cache;
    println!(
        "  cache metrics: hits={} misses={} prepared_hits={} prepared_invalidations={} rebind_failures={}",
        m.hits, m.misses, m.prepared_hits, m.prepared_invalidations, m.rebind_failures
    );
    println!(
        "  observability: epoch {}, {} series, {} queries recorded across all paths",
        obs.epoch,
        obs.registry.names().len(),
        obs.registry.counter_sum("relgo_queries_total")
    );
    assert!(m.prepared_hits > 0);
    assert_eq!(m.rebind_failures, 0);
    Ok(())
}
