//! Social-network analytics on the LDBC-SNB-like dataset: runs a selection
//! of the IC workload under every compared system and prints an execution
//! summary — a miniature of the paper's §5.3 comprehensive experiment.
//!
//! Run with: `cargo run --release --example social_network`

use relgo::prelude::*;
use relgo::workloads::snb_queries;

fn main() -> Result<()> {
    let sf = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("generating SNB-like dataset at sf = {sf} ...");
    let (session, schema) = Session::snb(sf, 42)?;
    let stats = session.view().stats();
    println!(
        "graph: {} vertices, {} edges\n",
        stats.total_vertices(),
        stats.total_edges()
    );

    let queries = snb_queries::ldbc_interactive(&schema)?;
    let modes = [
        OptimizerMode::DuckDbLike,
        OptimizerMode::GRainDb,
        OptimizerMode::UmbraLike,
        OptimizerMode::KuzuLike,
        OptimizerMode::RelGo,
    ];

    println!(
        "{:<8} {:>8} {}",
        "query",
        "rows",
        modes
            .iter()
            .map(|m| format!("{:>12}", m.name()))
            .collect::<String>()
    );
    for w in queries.iter().filter(|w| {
        // Keep the demo snappy: the 1-hop variants plus the cyclic queries.
        !w.name.ends_with("-2") && !w.name.ends_with("-3")
    }) {
        let mut row = String::new();
        let mut rows = 0;
        for mode in modes {
            let out = session.run(&w.query, mode)?;
            rows = out.table.num_rows();
            row.push_str(&format!("{:>10.2}ms", out.e2e().as_secs_f64() * 1e3));
        }
        println!(
            "{:<8} {:>8} {}{}",
            w.name,
            rows,
            row,
            if w.cyclic { "  (cyclic)" } else { "" }
        );
    }

    println!("\ncyclic micro-benchmarks (QC, distinct-vertex semantics):");
    for w in snb_queries::qc_queries(&schema)? {
        let relgo = session.run(&w.query, OptimizerMode::RelGo)?;
        let noei = session.run(&w.query, OptimizerMode::RelGoNoEI);
        let count = relgo.table.value(0, 0);
        match noei {
            Ok(out) => println!(
                "{}: count={}  RelGo {:.2}ms vs NoEI {:.2}ms",
                w.name,
                count,
                relgo.e2e().as_secs_f64() * 1e3,
                out.e2e().as_secs_f64() * 1e3
            ),
            Err(RelGoError::ResourceExhausted(_)) => println!(
                "{}: count={}  RelGo {:.2}ms vs NoEI OOM",
                w.name,
                count,
                relgo.e2e().as_secs_f64() * 1e3
            ),
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
