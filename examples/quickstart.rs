//! Quickstart: the paper's running example (Fig. 1/Fig. 2) end to end.
//!
//! Builds the four relational tables of Fig. 2, declares the property graph
//! via RGMapping, expresses the Fig. 1 SQL/PGQ query as an SPJM AST, and
//! runs it under the converged optimizer and the graph-agnostic baseline.
//!
//! Run with: `cargo run --example quickstart`

use relgo::core::spjm::SpjmBuilder;
use relgo::prelude::*;

fn main() -> Result<()> {
    // ---- Relational tables (paper Fig. 2a) -----------------------------
    let mut db = Database::new();
    db.add_table(table_of(
        "Person",
        &[
            ("person_id", DataType::Int),
            ("name", DataType::Str),
            ("place_id", DataType::Int),
        ],
        vec![
            vec![1.into(), "Tom".into(), 10.into()],
            vec![2.into(), "Bob".into(), 20.into()],
            vec![3.into(), "David".into(), 30.into()],
        ],
    ));
    db.add_table(table_of(
        "Message",
        &[("message_id", DataType::Int), ("content", DataType::Str)],
        vec![
            vec![100.into(), "hello graph".into()],
            vec![200.into(), "hello relation".into()],
        ],
    ));
    db.add_table(table_of(
        "Likes",
        &[
            ("likes_id", DataType::Int),
            ("pid", DataType::Int),
            ("mid", DataType::Int),
            ("date", DataType::Date),
        ],
        vec![
            vec![1.into(), 1.into(), 100.into(), Value::Date(31)],
            vec![2.into(), 2.into(), 100.into(), Value::Date(28)],
            vec![3.into(), 2.into(), 200.into(), Value::Date(20)],
            vec![4.into(), 3.into(), 200.into(), Value::Date(21)],
        ],
    ));
    db.add_table(table_of(
        "Knows",
        &[
            ("knows_id", DataType::Int),
            ("pid1", DataType::Int),
            ("pid2", DataType::Int),
        ],
        vec![
            vec![1.into(), 1.into(), 2.into()],
            vec![2.into(), 2.into(), 1.into()],
            vec![3.into(), 2.into(), 3.into()],
            vec![4.into(), 3.into(), 2.into()],
        ],
    ));
    db.add_table(table_of(
        "Place",
        &[("id", DataType::Int), ("name", DataType::Str)],
        vec![
            vec![10.into(), "Germany".into()],
            vec![20.into(), "Denmark".into()],
            vec![30.into(), "China".into()],
        ],
    ));
    for (t, k) in [
        ("Person", "person_id"),
        ("Message", "message_id"),
        ("Likes", "likes_id"),
        ("Knows", "knows_id"),
        ("Place", "id"),
    ] {
        db.set_primary_key(t, k)?;
    }

    // ---- CREATE PROPERTY GRAPH (RGMapping, Fig. 2a) ---------------------
    let mapping = RGMapping::new()
        .vertex("Person")
        .vertex("Message")
        .edge("Likes", "pid", "Person", "mid", "Message")
        .edge("Knows", "pid1", "Person", "pid2", "Person");

    let session = Session::open(db, mapping)?;
    let view = session.view();
    let schema = view.schema();
    let person = schema.vertex_label_id("Person")?;
    let message = schema.vertex_label_id("Message")?;
    let likes = schema.edge_label_id("Likes")?;
    let knows = schema.edge_label_id("Knows")?;

    // ---- The Fig. 1 SQL/PGQ query as an SPJM AST -------------------------
    // MATCH (p1:Person)-[:Likes]->(m:Message),
    //       (p2:Person)-[:Likes]->(m),
    //       (p1)-[:Knows]->(p2)
    // COLUMNS (p1.name, p1.place_id, p2.name)
    // JOIN Place ON p1.place_id = Place.id
    // WHERE p1.name = 'Tom'
    // SELECT p2.name, Place.name
    let mut pb = PatternBuilder::new();
    let p1 = pb.vertex("p1", person);
    let p2 = pb.vertex("p2", person);
    let m = pb.vertex("m", message);
    pb.edge(p1, m, likes)?;
    pb.edge(p2, m, likes)?;
    pb.edge(p1, p2, knows)?;
    let pattern = pb.build()?;

    let mut b = SpjmBuilder::new(pattern);
    let p1_name = b.vertex_column(p1, 1, "p1_name");
    let p1_place = b.vertex_column(p1, 2, "p1_place_id");
    let p2_name = b.vertex_column(p2, 1, "p2_name");
    b.table("Place");
    b.join(p1_place, 3); // g.p1_place_id = Place.id
    b.select(ScalarExpr::col_eq(p1_name, "Tom"));
    b.project(&[p2_name, 4]); // p2_name, Place.name
    let query = b.build();

    // ---- Optimize + execute under two systems ----------------------------
    println!("== RelGo (converged) plan ==");
    println!("{}", session.explain(&query, OptimizerMode::RelGo)?);
    println!("== DuckDB-like (graph-agnostic) plan ==");
    println!("{}", session.explain(&query, OptimizerMode::DuckDbLike)?);

    let relgo = session.run(&query, OptimizerMode::RelGo)?;
    let agnostic = session.run(&query, OptimizerMode::DuckDbLike)?;
    assert_eq!(relgo.table.sorted_rows(), agnostic.table.sorted_rows());

    println!("== Result ==");
    print!("{}", relgo.table.display(10));
    println!(
        "\nRelGo e2e: {:?}  |  graph-agnostic e2e: {:?}",
        relgo.e2e(),
        agnostic.e2e()
    );
    Ok(())
}
