//! Dynamic serving demo: ingest a dynamic-SNB update stream while the same
//! session serves templated IC queries.
//!
//! The walkthrough:
//!
//! 1. a manual ingest batch — insert a person and a knows edge, commit, and
//!    watch the epoch advance, statistics refresh incrementally, and the
//!    plan cache invalidate;
//! 2. snapshot isolation — a reader pinned to the pre-commit epoch keeps
//!    seeing the old data;
//! 3. a mixed replay (`ServeMode::Mixed`): concurrent writer threads
//!    committing update batches — racing on a shared marker row, so the
//!    losers observe first-committer-wins conflicts and retry — while
//!    reader threads serve snapshot-pinned verified cached queries plus
//!    prepared executes, with the per-replay cache-metric deltas printed
//!    at the end.
//!
//! Run with: `cargo run --release --example dynamic_serving [-- --quick]`
//! (`RELGO_THREADS=2` additionally gives every query 2 morsel workers.)

use relgo::prelude::*;
use relgo::workloads::dynamic::dynamic_snb;

fn main() -> Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sf, readers, rounds, commits, ops, writers) = if quick {
        (0.03, 2, 3, 3, 6, 2)
    } else {
        (0.1, 4, 8, 6, 25, 2)
    };

    println!("generating SNB-like data (sf={sf}) and building the session...");
    let (session, schema) = Session::snb_with(sf, 42, SessionOptions::default())?;
    // The dynamic-SNB bundle: IC read templates + a person/knows update
    // stream whose prefixes are safe to split across commits.
    let workload = dynamic_snb(&schema, &session.db(), 7, 8)?;
    let templates = &workload.templates;

    // --- 1. one manual ingest batch -----------------------------------
    let persons = session.db().table("Person")?.num_rows();
    let q = templates[0].instantiate(1)?;
    session.run_cached(&q, OptimizerMode::RelGo)?;
    let snap = session.snapshot();

    let new_person = 1_000_000i64;
    let mut batch = session.begin_ingest();
    batch.insert_row(
        "Person",
        vec![
            Value::Int(new_person),
            Value::str("Nov"),
            Value::Date(18_600),
        ],
    )?;
    batch.insert_edge(
        "Knows",
        vec![
            Value::Int(2_000_000),
            Value::Int(1),
            Value::Int(new_person),
            Value::Date(18_601),
        ],
    )?;
    // Plus the head of the generated update stream, through the same API.
    for op in &workload.ops {
        batch.insert_row(&op.table, op.row.clone())?;
    }
    let report = batch.commit()?;
    let stream_persons = workload.ops.iter().filter(|o| o.table == "Person").count();
    println!(
        "committed epoch {}: +{} rows into {:?} ({:.2}% of the data changed)",
        report.epoch,
        report.inserted,
        report.tables,
        report.changed_fraction * 100.0
    );
    match report.stats {
        StatsRefresh::Incremental { retained, evicted } => println!(
            "  statistics refreshed incrementally in {:?}: {retained} warm pattern counts kept, {evicted} evicted",
            report.stats_time
        ),
        StatsRefresh::Full => println!(
            "  statistics fully rebuilt in {:?} (past the staleness threshold)",
            report.stats_time
        ),
    }
    let out = session.run_cached(&q, OptimizerMode::RelGo)?;
    assert!(!out.cached, "the commit invalidated the cached plan");
    println!("  post-commit run_cached re-optimized (cache was invalidated)");

    // --- 2. snapshot isolation ----------------------------------------
    let new_persons = persons + 1 + stream_persons;
    assert_eq!(snap.epoch(), 0);
    assert_eq!(snap.db().table("Person")?.num_rows(), persons);
    assert_eq!(session.db().table("Person")?.num_rows(), new_persons);
    println!(
        "snapshot pinned to epoch 0 still sees {persons} persons; the live session sees {new_persons}"
    );

    // --- 3. mixed replay ----------------------------------------------
    println!(
        "mixed replay: {readers} readers x {rounds} rounds (verified) + {writers} writers x {commits} commits x {ops} rows..."
    );
    let before = session.cache_metrics();
    let report = replay_concurrent_with(
        &session,
        templates,
        OptimizerMode::RelGo,
        readers,
        rounds,
        ServeMode::Mixed {
            commits,
            ops_per_commit: ops,
            writers,
        },
    )?;
    let ms = |d: Option<std::time::Duration>| d.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
    println!(
        "  {} queries ({} prepared, {} from cache/pins) in {:.1} ms ({:.0} q/s, p50 {:.3} ms, p99 {:.3} ms) — zero divergences",
        report.queries,
        report.prepared_queries,
        report.cached_queries,
        report.elapsed.as_secs_f64() * 1e3,
        report.throughput(),
        ms(report.p50()),
        ms(report.p99())
    );
    println!(
        "  writers: {} commits, {} rows committed, {} write conflicts retried, final epoch {}",
        report.commits,
        report.ingested_rows,
        report.conflicts,
        session.epoch()
    );
    // The per-replay cache-metric deltas: how serving behaved *during*
    // the ingest traffic.
    let m = report.metrics;
    println!(
        "  replay cache deltas: hits={} misses={} invalidations={} prepared_hits={} prepared_invalidations={} rebind_failures={}",
        m.hits, m.misses, m.invalidations, m.prepared_hits, m.prepared_invalidations, m.rebind_failures
    );
    assert_eq!(report.commits, commits);
    let writer_rounds = commits.div_ceil(writers);
    assert_eq!(
        report.conflicts,
        commits - writer_rounds,
        "every multi-writer round produces exactly one marker conflict"
    );
    assert!(
        m.invalidations >= commits as u64,
        "every commit invalidates"
    );
    assert!(
        m.prepared_invalidations >= 1,
        "stale pins re-optimized after commits"
    );
    let delta = session.cache_metrics().since(&before);
    assert_eq!(m, delta, "report deltas equal the session-level diff");

    // The unified snapshot folds the ingest counters the replay produced
    // into the same registry the server's /metrics endpoint scrapes.
    let obs = session.observability_snapshot();
    println!(
        "  observability: epoch {}, {} series, {} ingest commits / {} conflicts / {} rows recorded",
        obs.epoch,
        obs.registry.names().len(),
        obs.registry.counter_sum("relgo_ingest_commits_total"),
        obs.registry.counter_sum("relgo_ingest_conflicts_total"),
        obs.registry.counter_sum("relgo_ingest_rows_total")
    );
    Ok(())
}
