//! Plan-cache serving demo: replay a templated SNB workload from several
//! threads against one shared session.
//!
//! Each worker draws fresh literals for the same query templates; the
//! first instance of a template pays the converged optimizer, every later
//! instance rebinds the cached plan skeleton. The run prints per-phase
//! optimizer time and the cache's metric counters.
//!
//! Inter- and intra-query parallelism compose: `RELGO_THREADS=4` gives
//! every replayed query 4 morsel workers inside its graph operators while
//! the replay itself runs from several serving threads.
//!
//! Run with: `cargo run --release --example cache_serving [-- --quick]`

use relgo::prelude::*;
use relgo::workloads::templates::snb_templates;

fn main() -> Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sf, threads, rounds) = if quick { (0.03, 2, 3) } else { (0.1, 4, 25) };

    println!("generating SNB-like data (sf={sf}) and building the session...");
    let options = SessionOptions::default();
    println!(
        "  serving threads: {threads}, intra-query morsel workers: {} (RELGO_THREADS)",
        options.threads
    );
    let (session, schema) = Session::snb_with(sf, 42, options)?;
    let templates = snb_templates(&schema);

    // Phase 1: cold — every template's first instance misses and pays the
    // full GLogue cost-based optimization.
    let mut cold_opt = std::time::Duration::ZERO;
    for t in &templates {
        let out = session.run_cached(&t.instantiate(0)?, OptimizerMode::RelGo)?;
        assert!(!out.cached);
        cold_opt += out.opt.elapsed;
        println!(
            "  cold {:<8} opt {:>8.3} ms  exec {:>8.3} ms  ({} rows)",
            t.name(),
            out.opt.elapsed.as_secs_f64() * 1e3,
            out.exec_time.as_secs_f64() * 1e3,
            out.table.num_rows()
        );
    }

    // Phase 2: warm concurrent replay through the shared plan cache.
    println!(
        "replaying {threads} threads x {rounds} rounds x {} templates...",
        templates.len()
    );
    let report = replay_concurrent(&session, &templates, OptimizerMode::RelGo, threads, rounds)?;
    println!(
        "  {} queries in {:.1} ms ({:.0} q/s), {} served from cache",
        report.queries,
        report.elapsed.as_secs_f64() * 1e3,
        report.throughput(),
        report.cached_queries
    );
    println!(
        "  summed opt time: cold phase {:.3} ms over {} queries, warm phase {:.3} ms over {} queries",
        cold_opt.as_secs_f64() * 1e3,
        templates.len(),
        report.opt_time.as_secs_f64() * 1e3,
        report.queries
    );

    let m = session.cache_metrics();
    println!(
        "  cache metrics: hits={} misses={} evictions={} invalidations={} rebind_failures={}",
        m.hits, m.misses, m.evictions, m.invalidations, m.rebind_failures
    );
    assert_eq!(m.misses as usize, templates.len(), "one miss per template");
    assert_eq!(m.hits as usize, report.queries, "replay is hits-only");
    Ok(())
}
