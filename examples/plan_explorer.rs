//! Plan explorer: prints the optimized physical plans of the JOB17 case
//! study (paper Fig. 12) under RelGo, GRainDB and Umbra-like optimizers,
//! showing how the converged optimizer follows graph semantics (continuous
//! expansion from the selective keyword) while the relational baselines
//! break the adjacency order.
//!
//! Run with: `cargo run --example plan_explorer`

use relgo::prelude::*;
use relgo::workloads::job_queries;

fn main() -> Result<()> {
    let (session, schema) = Session::imdb(0.1, 7)?;
    let spec = &job_queries::job_specs()[16]; // JOB17
    let query = job_queries::build_job(&schema, spec)?;

    println!("JOB17 (Fig. 12 case study):");
    println!("  keyword = 'character-name-in-title'");
    println!("  company country_code = '[us]'");
    println!("  actor name STARTS WITH 'B'");
    println!("  SELECT MIN(t.title), MIN(n.name)\n");

    for mode in [
        OptimizerMode::RelGo,
        OptimizerMode::GRainDb,
        OptimizerMode::UmbraLike,
        OptimizerMode::DuckDbLike,
        OptimizerMode::KuzuLike,
    ] {
        let (plan, stats) = session.optimize(&query, mode)?;
        println!(
            "== {} (optimized in {:?}{}) ==",
            mode.name(),
            stats.elapsed,
            if stats.plans_visited > 0 {
                format!(", {} plans visited", stats.plans_visited)
            } else {
                String::new()
            }
        );
        println!("{}", plan.explain());
        let out = session.execute(&plan, mode)?;
        println!("result: {}\n", out.display(3));
    }

    // Also show the effect of the heuristic rules on an SNB query.
    let (snb, sschema) = Session::snb(0.05, 42)?;
    let qr = relgo::workloads::snb_queries::qr_queries(&sschema)?;
    println!("== QR3 with TrimAndFuseRule (RelGo) ==");
    println!("{}", snb.explain(&qr[2].query, OptimizerMode::RelGo)?);
    println!("== QR3 without rules (RelGoNoRule) ==");
    println!("{}", snb.explain(&qr[2].query, OptimizerMode::RelGoNoRule)?);
    Ok(())
}
