//! Join-order analytics on the IMDB-like dataset: the JOB-style workload
//! under the join-order-sensitive systems (paper Fig. 10's setting).
//!
//! Run with: `cargo run --release --example movie_analytics`

use relgo::prelude::*;
use relgo::workloads::job_queries;

fn main() -> Result<()> {
    let sf = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("generating IMDB-like dataset at sf = {sf} ...");
    let (session, schema) = Session::imdb(sf, 7)?;
    for t in session.db().tables() {
        println!("  {:<16} {:>8} rows", t.name(), t.num_rows());
    }
    println!();

    let queries = job_queries::job_queries(&schema)?;
    let modes = [
        OptimizerMode::DuckDbLike,
        OptimizerMode::GRainDb,
        OptimizerMode::RelGoHash,
        OptimizerMode::RelGo,
    ];
    println!(
        "{:<7} {}",
        "query",
        modes
            .iter()
            .map(|m| format!("{:>12}", m.name()))
            .collect::<String>()
    );
    let mut totals = vec![0f64; modes.len()];
    for w in queries.iter().take(10) {
        let mut line = String::new();
        for (i, mode) in modes.iter().enumerate() {
            let out = session.run(&w.query, *mode)?;
            let ms = out.e2e().as_secs_f64() * 1e3;
            totals[i] += ms;
            line.push_str(&format!("{ms:>10.2}ms"));
        }
        println!("{:<7} {}", w.name, line);
    }
    println!(
        "{:<7} {}",
        "total",
        totals
            .iter()
            .map(|t| format!("{t:>10.2}ms"))
            .collect::<String>()
    );
    println!(
        "\nspeedup over DuckDB-like: GRainDB {:.1}x, RelGoHash {:.1}x, RelGo {:.1}x",
        totals[0] / totals[1],
        totals[0] / totals[2],
        totals[0] / totals[3]
    );
    Ok(())
}
